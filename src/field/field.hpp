// Abstract environment models.
//
// The paper represents a physical condition over the region as a bivariate
// function z = f(x, y) ("virtual surface", Section 3.1); time-varying
// conditions add a time argument, z = f(x(t), y(t)).  Every consumer in the
// library — planners, the delta metric, curvature estimation, trace
// generation — works against these two interfaces, which is what lets the
// GreenOrbs trace substitution stay behind one seam.
//
// Both interfaces follow the non-virtual-interface pattern: the public
// `value` overloads forward to one private virtual, so implementations
// override a single function and callers get both calling conventions.
#pragma once

#include "geometry/vec2.hpp"

namespace cps::field {

/// A static scalar environment over the plane: z = f(x, y).
///
/// Implementations must be safe to call concurrently from const contexts
/// and total over the region of interest (callers never range-check).
class Field {
 public:
  virtual ~Field() = default;

  /// Environment value at position p.
  double value(geo::Vec2 p) const { return do_value(p); }

  /// Convenience overload.
  double value(double x, double y) const { return do_value({x, y}); }

 private:
  virtual double do_value(geo::Vec2 p) const = 0;
};

/// A time-varying scalar environment: z = f(x, y, t).  Time is in the
/// simulation unit (minutes in the paper's evaluation).
class TimeVaryingField {
 public:
  virtual ~TimeVaryingField() = default;

  /// Environment value at position p and time t.
  double value(geo::Vec2 p, double t) const { return do_value(p, t); }

  double value(double x, double y, double t) const {
    return do_value({x, y}, t);
  }

 private:
  virtual double do_value(geo::Vec2 p, double t) const = 0;
};

/// Non-owning view of a TimeVaryingField frozen at one instant, usable
/// wherever a static Field is expected (e.g. evaluating delta at slot t).
/// The underlying field must outlive the slice.
class FieldSlice final : public Field {
 public:
  FieldSlice(const TimeVaryingField& field, double t) noexcept
      : field_(&field), t_(t) {}

  double time() const noexcept { return t_; }

 private:
  double do_value(geo::Vec2 p) const override {
    return field_->value(p, t_);
  }

  const TimeVaryingField* field_;
  double t_;
};

}  // namespace cps::field
