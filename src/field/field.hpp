// Abstract environment models.
//
// The paper represents a physical condition over the region as a bivariate
// function z = f(x, y) ("virtual surface", Section 3.1); time-varying
// conditions add a time argument, z = f(x(t), y(t)).  Every consumer in the
// library — planners, the delta metric, curvature estimation, trace
// generation — works against these two interfaces, which is what lets the
// GreenOrbs trace substitution stay behind one seam.
//
// Both interfaces follow the non-virtual-interface pattern: the public
// `value` overloads forward to one private virtual, so implementations
// override a single function and callers get both calling conventions.
// The batched `value_row` entry points follow the same pattern: the
// default virtual loops the scalar hook, so every implementation is
// batch-callable for free, and implementations that can hoist per-row
// work (grid bilinear weights, frame blends) override `do_value_row`.
//
// Batch contract: value_row must produce the same bits the scalar calls
// would — implementations may hoist row-invariant work but must keep the
// per-point arithmetic (expressions and evaluation order) unchanged.
// Callers therefore precompute their row abscissae with whatever
// expression their scalar loop used and pass them in, rather than
// passing (x0, dx) and letting the kernel re-derive positions with a
// differently-rounded recurrence.
#pragma once

#include <cstddef>
#include <span>

#include "geometry/vec2.hpp"

namespace cps::field {

/// A static scalar environment over the plane: z = f(x, y).
///
/// Implementations must be safe to call concurrently from const contexts
/// and total over the region of interest (callers never range-check).
class Field {
 public:
  virtual ~Field() = default;

  /// Environment value at position p.
  double value(geo::Vec2 p) const { return do_value(p); }

  /// Convenience overload.
  double value(double x, double y) const { return do_value({x, y}); }

  /// Batched row evaluation: out[i] = value(xs[i], y) for every abscissa,
  /// bit-identical to the scalar calls.  `out` must hold xs.size() slots.
  void value_row(double y, std::span<const double> xs, double* out) const {
    do_value_row(y, xs, out);
  }

 private:
  virtual double do_value(geo::Vec2 p) const = 0;

  virtual void do_value_row(double y, std::span<const double> xs,
                            double* out) const {
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = do_value({xs[i], y});
  }
};

/// A time-varying scalar environment: z = f(x, y, t).  Time is in the
/// simulation unit (minutes in the paper's evaluation).
class TimeVaryingField {
 public:
  virtual ~TimeVaryingField() = default;

  /// Environment value at position p and time t.
  double value(geo::Vec2 p, double t) const { return do_value(p, t); }

  double value(double x, double y, double t) const {
    return do_value({x, y}, t);
  }

  /// Batched row evaluation at time t; same contract as Field::value_row.
  void value_row(double y, std::span<const double> xs, double t,
                 double* out) const {
    do_value_row(y, xs, t, out);
  }

 private:
  virtual double do_value(geo::Vec2 p, double t) const = 0;

  virtual void do_value_row(double y, std::span<const double> xs, double t,
                            double* out) const {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = do_value({xs[i], y}, t);
    }
  }
};

/// Non-owning view of a TimeVaryingField frozen at one instant, usable
/// wherever a static Field is expected (e.g. evaluating delta at slot t).
/// The underlying field must outlive the slice.
class FieldSlice final : public Field {
 public:
  FieldSlice(const TimeVaryingField& field, double t) noexcept
      : field_(&field), t_(t) {}

  double time() const noexcept { return t_; }

  /// The sliced field.  Slices are cheap temporaries, so consumers that
  /// memoize per-frame work (DeltaMetric's reference cache) key on the
  /// underlying field's identity plus time() rather than on the slice.
  const TimeVaryingField& underlying() const noexcept { return *field_; }

 private:
  double do_value(geo::Vec2 p) const override {
    return field_->value(p, t_);
  }

  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override {
    field_->value_row(y, xs, t_, out);
  }

  const TimeVaryingField* field_;
  double t_;
};

}  // namespace cps::field
