// Closed-form environment models: exact functions used as referential
// surfaces in tests and in the Fig. 3 reproduction (Matlab peaks).
#pragma once

#include <functional>
#include <vector>

#include "field/field.hpp"
#include "numerics/quadrature.hpp"
#include "parallel/simd.hpp"

namespace cps::field {

/// Type tags feeding the zoo's parameter-hashed content keys (see
/// Field::content_key); distinct per concrete field so equal parameter
/// lists of different types cannot collide structurally.
namespace fieldtag {
inline constexpr std::uint64_t kConstant = 0x6370732d636f6e73ull;
inline constexpr std::uint64_t kPlane = 0x6370732d706c616eull;
inline constexpr std::uint64_t kQuadric = 0x6370732d71756164ull;
inline constexpr std::uint64_t kPeaks = 0x6370732d70656b73ull;
inline constexpr std::uint64_t kMixture = 0x6370732d6d697874ull;
inline constexpr std::uint64_t kGrid = 0x6370732d67726964ull;
inline constexpr std::uint64_t kGreenOrbs = 0x6370732d676f7262ull;
}  // namespace fieldtag

/// Wraps an arbitrary callable as a Field.
class AnalyticField final : public Field {
 public:
  /// Throws std::invalid_argument when fn is empty.
  explicit AnalyticField(std::function<double(double, double)> fn);

 private:
  double do_value(geo::Vec2 p) const override { return fn_(p.x, p.y); }

  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override {
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = fn_(xs[i], y);
  }

  std::function<double(double, double)> fn_;
};

/// Constant surface z = c (the degenerate case every interpolant must
/// reproduce exactly).
class ConstantField final : public Field {
 public:
  explicit ConstantField(double c) noexcept : c_(c) {}

 private:
  double do_value(geo::Vec2) const override { return c_; }

  void do_value_row(double, std::span<const double> xs,
                    double* out) const override {
    CPS_SIMD
    for (std::size_t i = 0; i < xs.size(); ++i) out[i] = c_;
  }

  std::uint64_t do_content_key() const override {
    return fieldkey::combine(fieldtag::kConstant, fieldkey::bits(c_));
  }

  double c_;
};

/// Plane z = offset + gx * x + gy * y.  Piecewise-linear interpolation is
/// exact on planes, which makes this the canonical zero-delta test field.
class PlaneField final : public Field {
 public:
  PlaneField(double offset, double gx, double gy) noexcept
      : offset_(offset), gx_(gx), gy_(gy) {}

 private:
  double do_value(geo::Vec2 p) const override {
    return offset_ + gx_ * p.x + gy_ * p.y;
  }

  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override {
    CPS_SIMD
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out[i] = offset_ + gx_ * xs[i] + gy_ * y;
    }
  }

  std::uint64_t do_content_key() const override {
    std::uint64_t h = fieldkey::combine(fieldtag::kPlane,
                                        fieldkey::bits(offset_));
    h = fieldkey::combine(h, fieldkey::bits(gx_));
    return fieldkey::combine(h, fieldkey::bits(gy_));
  }

  double offset_;
  double gx_;
  double gy_;
};

/// Centered quadric z = a dx^2 + b dx dy + c dy^2 — ground truth for the
/// curvature estimator (its fit must recover a, b, c exactly).
class QuadricField final : public Field {
 public:
  QuadricField(geo::Vec2 center, double a, double b, double c) noexcept
      : center_(center), a_(a), b_(b), c_(c) {}

 private:
  double do_value(geo::Vec2 p) const override {
    const geo::Vec2 d = p - center_;
    return a_ * d.x * d.x + b_ * d.x * d.y + c_ * d.y * d.y;
  }

  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override {
    const double dy = y - center_.y;
    CPS_SIMD
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double dx = xs[i] - center_.x;
      out[i] = a_ * dx * dx + b_ * dx * dy + c_ * dy * dy;
    }
  }

  std::uint64_t do_content_key() const override {
    std::uint64_t h = fieldkey::combine(fieldtag::kQuadric,
                                        fieldkey::bits(center_.x));
    h = fieldkey::combine(h, fieldkey::bits(center_.y));
    h = fieldkey::combine(h, fieldkey::bits(a_));
    h = fieldkey::combine(h, fieldkey::bits(b_));
    return fieldkey::combine(h, fieldkey::bits(c_));
  }

  geo::Vec2 center_;
  double a_;
  double b_;
  double c_;
};

/// The Matlab `peaks` surface mapped from its native [-3, 3]^2 domain onto
/// an arbitrary rectangle.  This is the exact referential surface of the
/// paper's Fig. 3 (Peaks(100) on a 100 x 100 region).
class PeaksField final : public Field {
 public:
  /// Throws std::invalid_argument for an empty rectangle.
  explicit PeaksField(const num::Rect& domain);

  /// The classic formula on native coordinates (u, v) in [-3, 3].
  static double peaks(double u, double v) noexcept;

 private:
  double do_value(geo::Vec2 p) const override;
  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override;
  std::uint64_t do_content_key() const override;

  num::Rect domain_;
};

/// One radial Gaussian bump.
struct GaussianBump {
  geo::Vec2 center;
  double amplitude = 1.0;
  double sigma = 1.0;  ///< Spatial spread; must be > 0.
};

/// Sum of Gaussian bumps over a base level — the building block of the
/// synthetic GreenOrbs-like light field (canopy gaps show up as bright,
/// roughly radial patches; see cps::trace).
class GaussianMixtureField final : public Field {
 public:
  /// Throws std::invalid_argument when any bump has sigma <= 0.
  GaussianMixtureField(double base, std::vector<GaussianBump> bumps);

  double base() const noexcept { return base_; }
  const std::vector<GaussianBump>& bumps() const noexcept { return bumps_; }

 private:
  double do_value(geo::Vec2 p) const override;
  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override;
  std::uint64_t do_content_key() const override;

  double base_;
  std::vector<GaussianBump> bumps_;
};

}  // namespace cps::field
