#include "field/analytic_fields.hpp"

#include <cmath>
#include <stdexcept>

namespace cps::field {

AnalyticField::AnalyticField(std::function<double(double, double)> fn)
    : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("AnalyticField: empty callable");
}

PeaksField::PeaksField(const num::Rect& domain) : domain_(domain) {
  if (domain.width() <= 0.0 || domain.height() <= 0.0) {
    throw std::invalid_argument("PeaksField: empty domain");
  }
}

double PeaksField::peaks(double u, double v) noexcept {
  return 3.0 * (1.0 - u) * (1.0 - u) * std::exp(-u * u - (v + 1.0) * (v + 1.0)) -
         10.0 * (u / 5.0 - u * u * u - std::pow(v, 5.0)) *
             std::exp(-u * u - v * v) -
         (1.0 / 3.0) * std::exp(-(u + 1.0) * (u + 1.0) - v * v);
}

double PeaksField::do_value(geo::Vec2 p) const {
  const double u = -3.0 + 6.0 * (p.x - domain_.x0) / domain_.width();
  const double v = -3.0 + 6.0 * (p.y - domain_.y0) / domain_.height();
  return peaks(u, v);
}

void PeaksField::do_value_row(double y, std::span<const double> xs,
                              double* out) const {
  const double v = -3.0 + 6.0 * (y - domain_.y0) / domain_.height();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double u = -3.0 + 6.0 * (xs[i] - domain_.x0) / domain_.width();
    out[i] = peaks(u, v);
  }
}

GaussianMixtureField::GaussianMixtureField(double base,
                                           std::vector<GaussianBump> bumps)
    : base_(base), bumps_(std::move(bumps)) {
  for (const auto& b : bumps_) {
    if (b.sigma <= 0.0) {
      throw std::invalid_argument("GaussianMixtureField: sigma <= 0");
    }
  }
}

double GaussianMixtureField::do_value(geo::Vec2 p) const {
  double z = base_;
  for (const auto& b : bumps_) {
    const double r2 = distance_sq(p, b.center);
    z += b.amplitude * std::exp(-r2 / (2.0 * b.sigma * b.sigma));
  }
  return z;
}

void GaussianMixtureField::do_value_row(double y, std::span<const double> xs,
                                        double* out) const {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const geo::Vec2 p{xs[i], y};
    double z = base_;
    for (const auto& b : bumps_) {
      const double r2 = distance_sq(p, b.center);
      z += b.amplitude * std::exp(-r2 / (2.0 * b.sigma * b.sigma));
    }
    out[i] = z;
  }
}

}  // namespace cps::field
