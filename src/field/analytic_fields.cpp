#include "field/analytic_fields.hpp"

#include <cmath>
#include <stdexcept>

namespace cps::field {

AnalyticField::AnalyticField(std::function<double(double, double)> fn)
    : fn_(std::move(fn)) {
  if (!fn_) throw std::invalid_argument("AnalyticField: empty callable");
}

PeaksField::PeaksField(const num::Rect& domain) : domain_(domain) {
  if (domain.width() <= 0.0 || domain.height() <= 0.0) {
    throw std::invalid_argument("PeaksField: empty domain");
  }
}

double PeaksField::peaks(double u, double v) noexcept {
  return 3.0 * (1.0 - u) * (1.0 - u) * std::exp(-u * u - (v + 1.0) * (v + 1.0)) -
         10.0 * (u / 5.0 - u * u * u - std::pow(v, 5.0)) *
             std::exp(-u * u - v * v) -
         (1.0 / 3.0) * std::exp(-(u + 1.0) * (u + 1.0) - v * v);
}

double PeaksField::do_value(geo::Vec2 p) const {
  const double u = -3.0 + 6.0 * (p.x - domain_.x0) / domain_.width();
  const double v = -3.0 + 6.0 * (p.y - domain_.y0) / domain_.height();
  return peaks(u, v);
}

void PeaksField::do_value_row(double y, std::span<const double> xs,
                              double* out) const {
  // Split form of peaks(u, v) with the row-invariant subexpressions
  // hoisted: (v+1)^2, v^2, and v^5 are the same doubles per point whether
  // computed once or n times, and the per-point operand order matches
  // peaks() exactly, so the row is bit-identical to the scalar calls.
  // The three exponentials stay in plain scalar loops: a vectorized
  // std::exp would route to libmvec, whose results differ from scalar
  // libm in the last ulp.  Everything else — the u map, the exponent
  // arguments, the polynomial combine — is element-wise arithmetic and
  // vectorizes.
  const double v = -3.0 + 6.0 * (y - domain_.y0) / domain_.height();
  const double v_sq = v * v;
  const double vp1_sq = (v + 1.0) * (v + 1.0);
  const double v5 = std::pow(v, 5.0);
  const std::size_t n = xs.size();
  thread_local std::vector<double> us, e1, e2, e3;
  us.resize(n);
  e1.resize(n);
  e2.resize(n);
  e3.resize(n);
  CPS_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double u = -3.0 + 6.0 * (xs[i] - domain_.x0) / domain_.width();
    us[i] = u;
    e1[i] = -u * u - vp1_sq;
    e2[i] = -u * u - v_sq;
    e3[i] = -(u + 1.0) * (u + 1.0) - v_sq;
  }
  for (std::size_t i = 0; i < n; ++i) e1[i] = std::exp(e1[i]);
  for (std::size_t i = 0; i < n; ++i) e2[i] = std::exp(e2[i]);
  for (std::size_t i = 0; i < n; ++i) e3[i] = std::exp(e3[i]);
  CPS_SIMD
  for (std::size_t i = 0; i < n; ++i) {
    const double u = us[i];
    out[i] = 3.0 * (1.0 - u) * (1.0 - u) * e1[i] -
             10.0 * (u / 5.0 - u * u * u - v5) * e2[i] -
             (1.0 / 3.0) * e3[i];
  }
}

std::uint64_t PeaksField::do_content_key() const {
  std::uint64_t h =
      fieldkey::combine(fieldtag::kPeaks, fieldkey::bits(domain_.x0));
  h = fieldkey::combine(h, fieldkey::bits(domain_.y0));
  h = fieldkey::combine(h, fieldkey::bits(domain_.x1));
  return fieldkey::combine(h, fieldkey::bits(domain_.y1));
}

GaussianMixtureField::GaussianMixtureField(double base,
                                           std::vector<GaussianBump> bumps)
    : base_(base), bumps_(std::move(bumps)) {
  for (const auto& b : bumps_) {
    if (b.sigma <= 0.0) {
      throw std::invalid_argument("GaussianMixtureField: sigma <= 0");
    }
  }
}

double GaussianMixtureField::do_value(geo::Vec2 p) const {
  double z = base_;
  for (const auto& b : bumps_) {
    const double r2 = distance_sq(p, b.center);
    z += b.amplitude * std::exp(-r2 / (2.0 * b.sigma * b.sigma));
  }
  return z;
}

void GaussianMixtureField::do_value_row(double y, std::span<const double> xs,
                                        double* out) const {
  // Bump-outer restructuring of the scalar kernel: each point still
  // accumulates base + bump0 + bump1 + ... in declaration order, so the
  // per-point addition sequence — and therefore every intermediate
  // rounding — matches do_value exactly.  Per bump, a vectorizable pass
  // computes the exponent arguments (distance_sq spelled out in its
  // dx*dx + dy*dy evaluation order), a scalar pass applies std::exp
  // (libmvec is not bit-identical to scalar libm), and a vectorizable
  // pass folds the bump into the accumulator row.
  const std::size_t n = xs.size();
  CPS_SIMD
  for (std::size_t i = 0; i < n; ++i) out[i] = base_;
  thread_local std::vector<double> arg;
  arg.resize(n);
  for (const auto& b : bumps_) {
    const double cx = b.center.x;
    const double cy = b.center.y;
    const double dy_sq = (y - cy) * (y - cy);
    const double denom = 2.0 * b.sigma * b.sigma;
    const double amplitude = b.amplitude;
    CPS_SIMD
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - cx;
      const double r2 = dx * dx + dy_sq;
      arg[i] = -r2 / denom;
    }
    for (std::size_t i = 0; i < n; ++i) arg[i] = std::exp(arg[i]);
    CPS_SIMD
    for (std::size_t i = 0; i < n; ++i) out[i] += amplitude * arg[i];
  }
}

std::uint64_t GaussianMixtureField::do_content_key() const {
  std::uint64_t h =
      fieldkey::combine(fieldtag::kMixture, fieldkey::bits(base_));
  for (const auto& b : bumps_) {
    h = fieldkey::combine(h, fieldkey::bits(b.center.x));
    h = fieldkey::combine(h, fieldkey::bits(b.center.y));
    h = fieldkey::combine(h, fieldkey::bits(b.amplitude));
    h = fieldkey::combine(h, fieldkey::bits(b.sigma));
  }
  return h;
}

}  // namespace cps::field
