#include "field/grid_field.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/simd.hpp"

namespace cps::field {

GridField::GridField(const num::Rect& bounds, std::size_t nx, std::size_t ny)
    : GridField(bounds, nx, ny, std::vector<double>(nx * ny, 0.0)) {}

GridField::GridField(const num::Rect& bounds, std::size_t nx, std::size_t ny,
                     std::vector<double> data)
    : bounds_(bounds), nx_(nx), ny_(ny), data_(std::move(data)) {
  if (nx < 2 || ny < 2) throw std::invalid_argument("GridField: nx, ny >= 2");
  if (bounds.width() <= 0.0 || bounds.height() <= 0.0) {
    throw std::invalid_argument("GridField: empty bounds");
  }
  if (data_.size() != nx_ * ny_) {
    throw std::invalid_argument("GridField: data size != nx * ny");
  }
}

GridField GridField::sample(const Field& f, const num::Rect& bounds,
                            std::size_t nx, std::size_t ny) {
  GridField g(bounds, nx, ny);
  // Sample positions separate per axis, so the raster is one batched
  // value_row per grid row writing straight into the row-major storage.
  std::vector<double> xs(nx);
  for (std::size_t i = 0; i < nx; ++i) xs[i] = g.sample_position(i, 0).x;
  for (std::size_t j = 0; j < ny; ++j) {
    f.value_row(g.sample_position(0, j).y, xs, g.data_.data() + j * nx);
  }
  return g;
}

geo::Vec2 GridField::sample_position(std::size_t i,
                                     std::size_t j) const noexcept {
  const double dx = bounds_.width() / static_cast<double>(nx_ - 1);
  const double dy = bounds_.height() / static_cast<double>(ny_ - 1);
  return {bounds_.x0 + static_cast<double>(i) * dx,
          bounds_.y0 + static_cast<double>(j) * dy};
}

double GridField::at(std::size_t i, std::size_t j) const {
  if (i >= nx_ || j >= ny_) throw std::out_of_range("GridField::at");
  return data_[j * nx_ + i];
}

void GridField::set(std::size_t i, std::size_t j, double z) {
  if (i >= nx_ || j >= ny_) throw std::out_of_range("GridField::set");
  data_[j * nx_ + i] = z;
  ++version_;  // Invalidate any content-keyed memoization of this grid.
}

std::uint64_t GridField::do_content_key() const {
  return fieldkey::combine(instance_key(), version_);
}

double GridField::do_value(geo::Vec2 p) const {
  // Map to fractional grid coordinates, clamped to the border so queries a
  // hair outside the rectangle (CMA nodes sensing at the fence) stay total.
  const double fx = (p.x - bounds_.x0) / bounds_.width() *
                    static_cast<double>(nx_ - 1);
  const double fy = (p.y - bounds_.y0) / bounds_.height() *
                    static_cast<double>(ny_ - 1);
  const double cx = std::clamp(fx, 0.0, static_cast<double>(nx_ - 1));
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny_ - 1));
  const auto i0 = static_cast<std::size_t>(
      std::min(cx, static_cast<double>(nx_ - 2)));
  const auto j0 = static_cast<std::size_t>(
      std::min(cy, static_cast<double>(ny_ - 2)));
  const double tx = cx - static_cast<double>(i0);
  const double ty = cy - static_cast<double>(j0);
  const double v00 = data_[j0 * nx_ + i0];
  const double v10 = data_[j0 * nx_ + i0 + 1];
  const double v01 = data_[(j0 + 1) * nx_ + i0];
  const double v11 = data_[(j0 + 1) * nx_ + i0 + 1];
  const double a = v00 * (1.0 - tx) + v10 * tx;
  const double b = v01 * (1.0 - tx) + v11 * tx;
  return a * (1.0 - ty) + b * ty;
}

void GridField::do_value_row(double y, std::span<const double> xs,
                             double* out) const {
  // The row kernel hoists everything that depends only on y — the clamped
  // fractional row coordinate, the cell row j0, the weight ty, and the two
  // source-row base pointers — out of the inner loop.  The per-point x
  // arithmetic is kept expression-for-expression identical to do_value
  // (no (nx-1)/width reciprocal hoist: that rounds differently), so the
  // batch is bit-identical to the scalar calls.
  const double fy = (y - bounds_.y0) / bounds_.height() *
                    static_cast<double>(ny_ - 1);
  const double cy = std::clamp(fy, 0.0, static_cast<double>(ny_ - 1));
  const auto j0 = static_cast<std::size_t>(
      std::min(cy, static_cast<double>(ny_ - 2)));
  const double ty = cy - static_cast<double>(j0);
  const double wy0 = 1.0 - ty;
  const double* row0 = data_.data() + j0 * nx_;
  const double* row1 = row0 + nx_;
  // Element-wise clamps, casts, and bilinear blends; the two source-row
  // reads become gathers.  Exact ops only, so lanes match the scalar loop.
  CPS_SIMD
  for (std::size_t k = 0; k < xs.size(); ++k) {
    const double fx = (xs[k] - bounds_.x0) / bounds_.width() *
                      static_cast<double>(nx_ - 1);
    const double cx = std::clamp(fx, 0.0, static_cast<double>(nx_ - 1));
    const auto i0 = static_cast<std::size_t>(
        std::min(cx, static_cast<double>(nx_ - 2)));
    const double tx = cx - static_cast<double>(i0);
    const double a = row0[i0] * (1.0 - tx) + row0[i0 + 1] * tx;
    const double b = row1[i0] * (1.0 - tx) + row1[i0 + 1] * tx;
    out[k] = a * wy0 + b * ty;
  }
}

double GridField::min_value() const noexcept {
  return *std::min_element(data_.begin(), data_.end());
}

double GridField::max_value() const noexcept {
  return *std::max_element(data_.begin(), data_.end());
}

}  // namespace cps::field
