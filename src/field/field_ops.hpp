// Field combinators: compose environment models without writing new
// classes.  All combinators share ownership of their operands via
// shared_ptr so composed fields are freely copyable and returnable.
#pragma once

#include <memory>

#include "field/field.hpp"

namespace cps::field {

using FieldPtr = std::shared_ptr<const Field>;

/// Pointwise sum of two fields.
class SumField final : public Field {
 public:
  /// Throws std::invalid_argument on null operands.
  SumField(FieldPtr a, FieldPtr b);

 private:
  double do_value(geo::Vec2 p) const override;

  FieldPtr a_;
  FieldPtr b_;
};

/// Affine transform of the value: scale * f(p) + offset.
class ScaledField final : public Field {
 public:
  ScaledField(FieldPtr f, double scale, double offset = 0.0);

 private:
  double do_value(geo::Vec2 p) const override;

  FieldPtr f_;
  double scale_;
  double offset_;
};

/// Evaluates the wrapped field at p - shift (translates features by
/// +shift).  Used by the trace generator to drift canopy-gap bumps.
class TranslatedField final : public Field {
 public:
  TranslatedField(FieldPtr f, geo::Vec2 shift);

 private:
  double do_value(geo::Vec2 p) const override;

  FieldPtr f_;
  geo::Vec2 shift_;
};

/// Clamps the value into [lo, hi]; models sensor saturation (light sensors
/// bottom out at 0 KLux).  Throws std::invalid_argument when lo > hi.
class ClampedField final : public Field {
 public:
  ClampedField(FieldPtr f, double lo, double hi);

 private:
  double do_value(geo::Vec2 p) const override;

  FieldPtr f_;
  double lo_;
  double hi_;
};

}  // namespace cps::field
