#include "field/field_ops.hpp"

#include <algorithm>
#include <stdexcept>

namespace cps::field {
namespace {

void require(const FieldPtr& f, const char* what) {
  if (!f) throw std::invalid_argument(what);
}

}  // namespace

SumField::SumField(FieldPtr a, FieldPtr b)
    : a_(std::move(a)), b_(std::move(b)) {
  require(a_, "SumField: null operand");
  require(b_, "SumField: null operand");
}

double SumField::do_value(geo::Vec2 p) const {
  return a_->value(p) + b_->value(p);
}

ScaledField::ScaledField(FieldPtr f, double scale, double offset)
    : f_(std::move(f)), scale_(scale), offset_(offset) {
  require(f_, "ScaledField: null operand");
}

double ScaledField::do_value(geo::Vec2 p) const {
  return scale_ * f_->value(p) + offset_;
}

TranslatedField::TranslatedField(FieldPtr f, geo::Vec2 shift)
    : f_(std::move(f)), shift_(shift) {
  require(f_, "TranslatedField: null operand");
}

double TranslatedField::do_value(geo::Vec2 p) const {
  return f_->value(p - shift_);
}

ClampedField::ClampedField(FieldPtr f, double lo, double hi)
    : f_(std::move(f)), lo_(lo), hi_(hi) {
  require(f_, "ClampedField: null operand");
  if (lo > hi) throw std::invalid_argument("ClampedField: lo > hi");
}

double ClampedField::do_value(geo::Vec2 p) const {
  return std::clamp(f_->value(p), lo_, hi_);
}

}  // namespace cps::field
