// Gridded environment data with bilinear interpolation.
//
// A GridField is the in-memory form of one trace frame (the GreenOrbs-like
// generator rasterises its analytic model into frames so the simulated
// "historical data" has the same granularity a real deployment log would).
#pragma once

#include <cstddef>
#include <vector>

#include "field/field.hpp"
#include "numerics/quadrature.hpp"

namespace cps::field {

/// nx x ny samples over a rectangle, bilinearly interpolated between sample
/// positions and clamped at the border.  Sample (i, j) sits at
/// (x0 + i*dx, y0 + j*dy) with dx = width/(nx-1).
class GridField final : public Field {
 public:
  /// Zero-filled grid.  Requires nx, ny >= 2 (std::invalid_argument).
  GridField(const num::Rect& bounds, std::size_t nx, std::size_t ny);

  /// Grid with explicit row-major data (data.size() == nx * ny, index
  /// j * nx + i); throws std::invalid_argument on size mismatch.
  GridField(const num::Rect& bounds, std::size_t nx, std::size_t ny,
            std::vector<double> data);

  /// Rasterises an arbitrary field onto a grid.
  static GridField sample(const Field& f, const num::Rect& bounds,
                          std::size_t nx, std::size_t ny);

  const num::Rect& bounds() const noexcept { return bounds_; }
  std::size_t nx() const noexcept { return nx_; }
  std::size_t ny() const noexcept { return ny_; }

  double at(std::size_t i, std::size_t j) const;
  void set(std::size_t i, std::size_t j, double z);

  /// Position of sample (i, j) on the plane.
  geo::Vec2 sample_position(std::size_t i, std::size_t j) const noexcept;

  double min_value() const noexcept;
  double max_value() const noexcept;

  /// Raw row-major storage (size nx * ny).
  const std::vector<double>& data() const noexcept { return data_; }

 private:
  double do_value(geo::Vec2 p) const override;
  void do_value_row(double y, std::span<const double> xs,
                    double* out) const override;

  /// Grids are mutable (set), so the key is instance-scoped rather than a
  /// data hash: the never-reused instance id plus a mutation counter.  Two
  /// equal-data grids don't share cache entries — conservative, but a
  /// stale entry can never be read back.
  std::uint64_t do_content_key() const override;

  num::Rect bounds_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  std::uint64_t version_ = 0;  ///< Bumped by set().
  std::vector<double> data_;
};

}  // namespace cps::field
