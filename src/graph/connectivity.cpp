#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>

namespace cps::graph {
namespace {

constexpr auto kUnvisited = std::numeric_limits<std::size_t>::max();

// Iterative Tarjan lowpoint DFS (explicit stack: deployments can chain
// hundreds of relays, which would overflow a recursive version).
struct Frame {
  std::size_t node;
  std::size_t parent;
  std::size_t next_neighbor_index;
};

}  // namespace

std::vector<std::size_t> articulation_points(const GeometricGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> discovery(n, kUnvisited);
  std::vector<std::size_t> low(n, 0);
  std::vector<bool> is_cut(n, false);
  std::size_t clock = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (discovery[root] != kUnvisited) continue;
    std::size_t root_children = 0;
    std::vector<Frame> stack{{root, kUnvisited, 0}};
    discovery[root] = low[root] = clock++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& neighbors = g.neighbors(frame.node);
      if (frame.next_neighbor_index < neighbors.size()) {
        const std::size_t next = neighbors[frame.next_neighbor_index++];
        if (discovery[next] == kUnvisited) {
          if (frame.node == root) ++root_children;
          discovery[next] = low[next] = clock++;
          stack.push_back(Frame{next, frame.node, 0});
        } else if (next != frame.parent) {
          low[frame.node] = std::min(low[frame.node], discovery[next]);
        }
      } else {
        // Post-order: fold this node's lowpoint into its parent and apply
        // the articulation criterion.
        const Frame done = frame;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.node] = std::min(low[parent.node], low[done.node]);
          if (parent.node != root &&
              low[done.node] >= discovery[parent.node]) {
            is_cut[parent.node] = true;
          }
        }
      }
    }
    if (root_children >= 2) is_cut[root] = true;
  }

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_cut[i]) out.push_back(i);
  }
  return out;
}

bool is_biconnected(const GeometricGraph& g) {
  if (g.node_count() <= 2) return g.is_connected();
  return g.is_connected() && articulation_points(g).empty();
}

std::size_t single_point_of_failure_count(const GeometricGraph& g) {
  return articulation_points(g).size();
}

}  // namespace cps::graph
