#include "graph/mst.hpp"

#include <limits>
#include <stdexcept>

namespace cps::graph {

std::vector<MstEdge> prim_mst(std::span<const geo::Vec2> points) {
  const std::size_t n = points.size();
  std::vector<MstEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, kInf);
  std::vector<std::size_t> parent(n, 0);

  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = geo::distance_sq(points[0], points[j]);
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = n;
    double pick_cost = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best[j] < pick_cost) {
        pick_cost = best[j];
        pick = j;
      }
    }
    in_tree[pick] = true;
    edges.push_back(MstEdge{parent[pick], pick, std::sqrt(pick_cost)});
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const double d2 = geo::distance_sq(points[pick], points[j]);
      if (d2 < best[j]) {
        best[j] = d2;
        parent[j] = pick;
      }
    }
  }
  return edges;
}

double total_weight(std::span<const MstEdge> edges) {
  double sum = 0.0;
  for (const auto& e : edges) sum += e.weight;
  return sum;
}

std::vector<GroupEdge> prim_group_mst(
    std::span<const std::vector<geo::Vec2>> groups) {
  const std::size_t n = groups.size();
  for (const auto& g : groups) {
    if (g.empty()) throw std::invalid_argument("prim_group_mst: empty group");
  }
  std::vector<GroupEdge> edges;
  if (n <= 1) return edges;
  edges.reserve(n - 1);

  // Closest-pair distance between every group pair, O(sum |gi| * |gj|).
  // Workloads here have tens of components of tens of nodes, so the dense
  // computation is well inside budget.
  const auto closest = [&](std::size_t a, std::size_t b) {
    GroupEdge e{a, b, groups[a].front(), groups[b].front(),
                std::numeric_limits<double>::infinity()};
    double best2 = std::numeric_limits<double>::infinity();
    for (const auto& pa : groups[a]) {
      for (const auto& pb : groups[b]) {
        const double d2 = geo::distance_sq(pa, pb);
        if (d2 < best2) {
          best2 = d2;
          e.point_a = pa;
          e.point_b = pb;
        }
      }
    }
    e.distance = std::sqrt(best2);
    return e;
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(n, false);
  std::vector<GroupEdge> best(n);
  std::vector<double> best_dist(n, kInf);

  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best[j] = closest(0, j);
    best_dist[j] = best[j].distance;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = n;
    double cost = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best_dist[j] < cost) {
        cost = best_dist[j];
        pick = j;
      }
    }
    in_tree[pick] = true;
    edges.push_back(best[pick]);
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      GroupEdge candidate = closest(pick, j);
      if (candidate.distance < best_dist[j]) {
        best[j] = candidate;
        best_dist[j] = candidate.distance;
      }
    }
  }
  return edges;
}

}  // namespace cps::graph
