#include "graph/union_find.hpp"

#include <numeric>
#include <stdexcept>

namespace cps::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  if (x >= parent_.size()) throw std::out_of_range("UnionFind::find");
  // Path halving: every other node points to its grandparent.
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --sets_;
  return true;
}

bool UnionFind::connected(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t UnionFind::set_size(std::size_t x) { return size_[find(x)]; }

}  // namespace cps::graph
