// Relay planning: the L(G, r) / P(G, i) primitives of FRA (Table 1).
//
// Given a partial deployment whose disk graph has several connected
// components, compute (a) the least number of additional relay nodes that
// stitches the components into one network — L(G, r) — and (b) concrete
// relay positions — P(G, i).  Relays are spaced along the closest-pair
// segments of the component MST, which is exactly the paper's "prim
// algorithm searching the minimum cost spanning tree" foresight step.
#pragma once

#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace cps::graph {

/// A relay plan for one deployment snapshot.
struct RelayPlan {
  /// Minimum relay count L(G, r).  Zero when already connected.
  std::size_t count = 0;
  /// Relay positions (size == count), evenly spaced strictly inside the
  /// MST bridge segments so that consecutive chain hops are <= r.
  std::vector<geo::Vec2> positions;
};

/// Computes the relay plan for `nodes` under communication radius r > 0
/// (std::invalid_argument otherwise).  An empty node set yields an empty
/// plan.
RelayPlan plan_relays(std::span<const geo::Vec2> nodes, double r);

/// Number of intermediate relays needed to bridge a gap of length d with
/// hop length <= r (0 when d <= r).
std::size_t relays_for_gap(double d, double r);

/// Evenly spaced interior points splitting segment [a, b] into
/// `relay_count` + 1 hops.
std::vector<geo::Vec2> relay_positions(geo::Vec2 a, geo::Vec2 b,
                                       std::size_t relay_count);

}  // namespace cps::graph
