#include "graph/geometric_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "parallel/spatial_hash.hpp"
#include "parallel/thread_pool.hpp"

namespace cps::graph {

GeometricGraph::GeometricGraph(std::span<const geo::Vec2> positions,
                               double radius)
    : positions_(positions.begin(), positions.end()),
      adjacency_(positions.size()),
      radius_(radius) {
  if (radius <= 0.0) throw std::invalid_argument("GeometricGraph: radius");
  if (positions_.empty()) return;
  const double r2 = radius * radius;
  // Grid-accelerated build: each node scans only the 3x3 cell
  // neighbourhood of radius-sized cells instead of all pairs, and each
  // node's list is an independent write, so the per-node loop runs in
  // parallel.  Sorting ascending reproduces the all-pairs scan's list
  // order exactly (has_edge binary-searches; tests compare verbatim).
  const par::SpatialHash hash(positions_, radius);
  par::parallel_for(
      positions_.size(),
      [&](std::size_t i) {
        auto& adj = adjacency_[i];
        hash.for_each_candidate(positions_[i], radius,
                                [&](std::uint32_t j) {
                                  if (j != i &&
                                      geo::distance_sq(positions_[i],
                                                       positions_[j]) <= r2) {
                                    adj.push_back(j);
                                  }
                                });
        std::sort(adj.begin(), adj.end());
      },
      /*grain=*/128);
  std::size_t degree_sum = 0;
  for (const auto& adj : adjacency_) degree_sum += adj.size();
  edge_count_ = degree_sum / 2;
}

bool GeometricGraph::has_edge(std::size_t a, std::size_t b) const {
  const auto& adj = adjacency_.at(a);
  if (b >= positions_.size()) throw std::out_of_range("has_edge");
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::vector<std::size_t> GeometricGraph::component_labels() const {
  constexpr auto kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> label(positions_.size(), kUnset);
  std::size_t next = 0;
  std::queue<std::size_t> frontier;
  for (std::size_t start = 0; start < positions_.size(); ++start) {
    if (label[start] != kUnset) continue;
    label[start] = next;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      for (const std::size_t v : adjacency_[u]) {
        if (label[v] == kUnset) {
          label[v] = next;
          frontier.push(v);
        }
      }
    }
    ++next;
  }
  return label;
}

std::size_t GeometricGraph::component_count() const {
  if (positions_.empty()) return 0;
  const auto labels = component_labels();
  return 1 + *std::max_element(labels.begin(), labels.end());
}

bool GeometricGraph::is_connected() const {
  return component_count() <= 1;
}

std::vector<std::vector<std::size_t>> GeometricGraph::components() const {
  const auto labels = component_labels();
  std::vector<std::vector<std::size_t>> groups(component_count());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(i);
  }
  return groups;
}

std::vector<std::size_t> GeometricGraph::bfs_hops(std::size_t source) const {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  if (source >= positions_.size()) throw std::out_of_range("bfs_hops");
  std::vector<std::size_t> dist(positions_.size(), kInf);
  std::queue<std::size_t> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (const std::size_t v : adjacency_[u]) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

}  // namespace cps::graph
