#include "graph/relay.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/geometric_graph.hpp"
#include "graph/mst.hpp"
#include "obs/obs.hpp"

namespace cps::graph {

std::size_t relays_for_gap(double d, double r) {
  if (r <= 0.0) throw std::invalid_argument("relays_for_gap: r <= 0");
  if (d <= r) return 0;
  // ceil(d / r) - 1 hops of length <= r; the epsilon shields exact
  // multiples of r from float round-up (a gap of exactly 2r needs 1 relay).
  return static_cast<std::size_t>(std::ceil(d / r - 1e-12)) - 1;
}

std::vector<geo::Vec2> relay_positions(geo::Vec2 a, geo::Vec2 b,
                                       std::size_t relay_count) {
  std::vector<geo::Vec2> out;
  out.reserve(relay_count);
  const double hops = static_cast<double>(relay_count + 1);
  for (std::size_t i = 1; i <= relay_count; ++i) {
    out.push_back(geo::lerp(a, b, static_cast<double>(i) / hops));
  }
  return out;
}

RelayPlan plan_relays(std::span<const geo::Vec2> nodes, double r) {
  if (r <= 0.0) throw std::invalid_argument("plan_relays: r <= 0");
  RelayPlan plan;
  if (nodes.size() <= 1) return plan;

  // Callers that already know the disk graph is connected (FRA's
  // union-find) skip this call entirely; the counter below is therefore
  // the process-wide "Prim MST actually ran" regression signal.
  CPS_TIMER("graph.relay.plan_relays");
  const GeometricGraph g(nodes, r);
  const auto comps = g.components();
  if (comps.size() <= 1) return plan;
  CPS_COUNT("graph.relay.mst_recomputes", 1);

  std::vector<std::vector<geo::Vec2>> groups;
  groups.reserve(comps.size());
  for (const auto& comp : comps) {
    std::vector<geo::Vec2> pts;
    pts.reserve(comp.size());
    for (const std::size_t id : comp) pts.push_back(g.position(id));
    groups.push_back(std::move(pts));
  }

  for (const auto& bridge : prim_group_mst(groups)) {
    const std::size_t need = relays_for_gap(bridge.distance, r);
    const auto pts = relay_positions(bridge.point_a, bridge.point_b, need);
    plan.count += need;
    plan.positions.insert(plan.positions.end(), pts.begin(), pts.end());
  }
  return plan;
}

}  // namespace cps::graph
