// Disk (unit-ball) graphs over node positions.
//
// The paper's connectivity model (Definition 3.1): vertices are node
// positions, and an edge exists between any pair at distance <= Rc.  This
// class materialises that graph with adjacency lists and answers the
// connectivity questions FRA, CMA, and the tests ask.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace cps::graph {

/// Immutable disk graph G(V, E) built from positions and a communication
/// radius.  Edges are undirected; self-loops are excluded.
class GeometricGraph {
 public:
  /// Builds the graph with a uniform-grid neighbour search (O(n) cells,
  /// each node checks its 3x3 cell neighbourhood), parallel over nodes.
  /// Radius must be > 0 (std::invalid_argument).
  GeometricGraph(std::span<const geo::Vec2> positions, double radius);

  std::size_t node_count() const noexcept { return positions_.size(); }
  std::size_t edge_count() const noexcept { return edge_count_; }
  double radius() const noexcept { return radius_; }

  geo::Vec2 position(std::size_t i) const { return positions_.at(i); }

  /// Single-hop neighbours of node i (sorted ascending).
  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return adjacency_.at(i);
  }

  std::size_t degree(std::size_t i) const { return adjacency_.at(i).size(); }

  bool has_edge(std::size_t a, std::size_t b) const;

  /// True when the graph has one connected component (vacuously true for
  /// <= 1 node).
  bool is_connected() const;

  /// Component label per node (labels are 0..count-1 in first-seen order).
  std::vector<std::size_t> component_labels() const;

  std::size_t component_count() const;

  /// Nodes grouped by component, ordered by label.
  std::vector<std::vector<std::size_t>> components() const;

  /// BFS hop distances from `source` (SIZE_MAX for unreachable nodes).
  std::vector<std::size_t> bfs_hops(std::size_t source) const;

 private:
  std::vector<geo::Vec2> positions_;
  std::vector<std::vector<std::size_t>> adjacency_;
  double radius_ = 0.0;
  std::size_t edge_count_ = 0;
};

}  // namespace cps::graph
