// Disjoint-set forest with union by rank and path compression.
#pragma once

#include <cstddef>
#include <vector>

namespace cps::graph {

/// Standard union-find over elements 0..n-1; near-O(1) amortised ops.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.  Throws std::out_of_range for bad ids.
  std::size_t find(std::size_t x);

  /// Merges the sets containing a and b; returns true when they were
  /// previously distinct.
  bool unite(std::size_t a, std::size_t b);

  bool connected(std::size_t a, std::size_t b);

  std::size_t size() const noexcept { return parent_.size(); }
  std::size_t set_count() const noexcept { return sets_; }

  /// Size of the set containing x.
  std::size_t set_size(std::size_t x);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace cps::graph
