// Minimum spanning trees over point sets (dense Prim).
//
// FRA's foresight step (Table 1) runs Prim over the connected components of
// the partial deployment to decide the cheapest set of inter-component
// links, then spends the remaining node budget as relays along those links.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/vec2.hpp"

namespace cps::graph {

/// One MST edge between point indices, with its Euclidean weight.
struct MstEdge {
  std::size_t a = 0;
  std::size_t b = 0;
  double weight = 0.0;
};

/// Prim's algorithm over the complete Euclidean graph of `points`
/// (O(n^2), dense representation).  Returns n-1 edges for n >= 1 points
/// (empty for n <= 1).
std::vector<MstEdge> prim_mst(std::span<const geo::Vec2> points);

/// Total weight of an edge list.
double total_weight(std::span<const MstEdge> edges);

/// MST over *groups* of points: the distance between two groups is their
/// closest-pair distance, and each returned edge records the closest pair
/// realising it.  `groups` must be non-empty point sets; throws
/// std::invalid_argument otherwise.
struct GroupEdge {
  std::size_t group_a = 0;
  std::size_t group_b = 0;
  geo::Vec2 point_a;  ///< Closest point inside group_a.
  geo::Vec2 point_b;  ///< Closest point inside group_b.
  double distance = 0.0;
};

std::vector<GroupEdge> prim_group_mst(
    std::span<const std::vector<geo::Vec2>> groups);

}  // namespace cps::graph
