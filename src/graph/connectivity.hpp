// Structural connectivity analysis beyond "is it connected".
//
// The paper's constraint is plain connectivity, but a deployment review
// cares how *robust* that connectivity is: an articulation point is a
// single node whose failure splits the network (the relay chains FRA
// builds are full of them), and a biconnected topology survives any
// single failure.  These helpers are used by the robustness tests and by
// deployment-quality reporting in the examples/benches.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/geometric_graph.hpp"

namespace cps::graph {

/// Nodes whose removal increases the number of connected components
/// (Tarjan/Hopcroft lowpoint algorithm, O(V + E)).  Sorted ascending.
std::vector<std::size_t> articulation_points(const GeometricGraph& g);

/// True when the graph is connected and has no articulation point
/// (trivially true for <= 2 connected nodes).
bool is_biconnected(const GeometricGraph& g);

/// Number of nodes whose individual failure would disconnect some pair of
/// surviving nodes — articulation count, the headline robustness figure.
std::size_t single_point_of_failure_count(const GeometricGraph& g);

}  // namespace cps::graph
