// Synthetic GreenOrbs-like environment trace.
//
// The paper's evaluation replays real light (KLux) measurements from the
// GreenOrbs forest deployment (100 x 100 m^2 window, 10:00 AM Nov 24 2009).
// That trace is not redistributable, so this module synthesises the closest
// behavioural stand-in (see DESIGN.md, substitutions): forest light under a
// canopy is a smooth ambient level punctured by bright, roughly radial
// patches where gaps let direct sun through.  We model it as
//
//   light(p, t) = envelope(t) * [ base
//                               + sum_i bump_i(p, t)        (canopy gaps)
//                               + noise_amp * fbm(p) ]      (leaf texture)
//   clamped at 0,
//
// where each gap bump is a Gaussian whose centre drifts slowly (sun angle
// moving the gap projection along the ground) and whose amplitude flutters
// sinusoidally (foliage motion), and envelope(t) is the diurnal light curve
// (zero before sunrise / after sunset, peaking at solar noon).
//
// Everything is deterministic in the seed, so experiments are replayable.
#pragma once

#include <cstdint>
#include <vector>

#include "field/field.hpp"
#include "field/grid_field.hpp"
#include "field/time_varying.hpp"
#include "numerics/noise.hpp"
#include "numerics/quadrature.hpp"

namespace cps::trace {

/// Minutes since midnight for h:m — the trace's time unit.
constexpr double minutes(int hour, int minute) noexcept {
  return 60.0 * hour + minute;
}

/// Generator parameters.  Defaults reproduce a field with the same scale
/// and roughness class as the paper's Fig. 1 surface (a few KLux, several
/// sharp bright patches over a dim forest floor).
struct GreenOrbsConfig {
  num::Rect region{0.0, 0.0, 100.0, 100.0};
  std::uint64_t seed = 20091124;  ///< Date of the paper's trace window.

  int gap_count = 10;            ///< Canopy gaps (bumps).
  double base_light = 0.6;       ///< Ambient forest-floor light, KLux.
  double amplitude_min = 1.0;    ///< Gap brightness range, KLux.
  double amplitude_max = 4.0;
  double sigma_min = 5.0;        ///< Gap radius range, metres.
  double sigma_max = 16.0;
  double drift_speed = 0.08;     ///< Gap-centre drift, metres / minute.
  double flutter_fraction = 0.25;  ///< Amplitude flutter depth (0..1).
  double flutter_period = 37.0;  ///< Minutes per flutter cycle.
  double noise_amplitude = 0.15;  ///< Leaf-texture noise, KLux.
  double noise_frequency = 0.08;  ///< Noise cells per metre.

  double sunrise = minutes(6, 30);   ///< Envelope support start.
  double sunset = minutes(17, 30);   ///< Envelope support end.
};

/// The time-varying synthetic light field.
class GreenOrbsField final : public field::TimeVaryingField {
 public:
  /// Validates the config (positive ranges, sunrise < sunset, gap_count
  /// >= 0) and derives all per-gap randomness from the seed; throws
  /// std::invalid_argument on bad parameters.
  explicit GreenOrbsField(const GreenOrbsConfig& config);

  /// Diurnal envelope in [0, 1]; zero outside (sunrise, sunset).
  double envelope(double t) const noexcept;

  const GreenOrbsConfig& config() const noexcept { return config_; }

  /// Rasterises one instant into a grid frame.
  field::GridField snapshot(double t, std::size_t nx, std::size_t ny) const;

  /// Rasterises [t0, t1] every dt minutes into a replayable frame sequence
  /// (t1 inclusive when it lands on the step).  Throws
  /// std::invalid_argument when dt <= 0 or t1 < t0.
  field::FrameSequenceField record(double t0, double t1, double dt,
                                   std::size_t nx, std::size_t ny) const;

 private:
  double do_value(geo::Vec2 p, double t) const override;
  void do_value_row(double y, std::span<const double> xs, double t,
                    double* out) const override;
  /// Parameter hash: the field is a pure function of its config (all gap
  /// randomness derives from the seed), so equal configs share content.
  std::uint64_t do_content_key() const override;

  struct Gap {
    geo::Vec2 center0;       // Position at t = 0 (midnight).
    geo::Vec2 drift;         // Metres per minute.
    double amplitude = 0.0;  // Peak KLux at solar noon.
    double sigma = 0.0;
    double flutter_phase = 0.0;
  };

  geo::Vec2 gap_center(const Gap& g, double t) const noexcept;

  GreenOrbsConfig config_;
  std::vector<Gap> gaps_;
  num::ValueNoise noise_;
};

}  // namespace cps::trace
