#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace cps::trace {
namespace {

void write_header(std::ostream& out, const char* kind,
                  const field::GridField& grid) {
  out << "# cps-" << kind << " v1\n";
  out << "# bounds " << grid.bounds().x0 << ' ' << grid.bounds().y0 << ' '
      << grid.bounds().x1 << ' ' << grid.bounds().y1 << '\n';
  out << "# shape " << grid.nx() << ' ' << grid.ny() << '\n';
}

/// Restores the stream's precision on scope exit, so serialisers can
/// write at full double precision without leaking format state into the
/// caller's stream.
class PrecisionGuard {
 public:
  PrecisionGuard(std::ostream& out, std::streamsize precision)
      : out_(out), saved_(out.precision(precision)) {}
  ~PrecisionGuard() { out_.precision(saved_); }
  PrecisionGuard(const PrecisionGuard&) = delete;
  PrecisionGuard& operator=(const PrecisionGuard&) = delete;

 private:
  std::ostream& out_;
  std::streamsize saved_;
};

void write_rows(std::ostream& out, const field::GridField& grid) {
  const PrecisionGuard guard(out, 17);
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      if (i) out << ',';
      out << grid.at(i, j);
    }
    out << '\n';
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("trace_io: malformed input: " + what);
}

std::string next_line(std::istream& in, const char* expected) {
  std::string line;
  if (!std::getline(in, line)) malformed(std::string("missing ") + expected);
  // Tolerate CRLF-terminated files (Windows editors, HTTP downloads):
  // getline leaves the '\r' on the line, which would fail the magic
  // comparison and poison the last cell of every data row.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Parses one CSV cell as a double, requiring the entire cell to be
/// consumed — "1.5abc" and empty cells are malformed, not silently
/// truncated.  Row/column are reported 1-based in the error.
double parse_cell(const std::string& cell, std::size_t row,
                  std::size_t column) {
  const auto fail = [&](const char* what) {
    malformed(std::string(what) + " at row " + std::to_string(row + 1) +
              ", column " + std::to_string(column + 1));
  };
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::invalid_argument&) {
    fail("unparsable cell");
  } catch (const std::out_of_range&) {
    fail("out-of-range cell");
  }
  if (consumed != cell.size()) fail("trailing garbage in cell");
  return value;
}

void parse_magic(std::istream& in, const std::string& magic) {
  if (next_line(in, magic.c_str()) != magic) malformed("bad magic");
}

num::Rect parse_bounds(std::istream& in) {
  std::istringstream ls(next_line(in, "bounds"));
  std::string hash;
  std::string word;
  num::Rect r;
  if (!(ls >> hash >> word >> r.x0 >> r.y0 >> r.x1 >> r.y1) ||
      hash != "#" || word != "bounds") {
    malformed("bounds line");
  }
  return r;
}

std::pair<std::size_t, std::size_t> parse_shape(std::istream& in) {
  std::istringstream ls(next_line(in, "shape"));
  std::string hash;
  std::string word;
  std::size_t nx = 0;
  std::size_t ny = 0;
  if (!(ls >> hash >> word >> nx >> ny) || hash != "#" || word != "shape") {
    malformed("shape line");
  }
  return {nx, ny};
}

std::vector<double> parse_rows(std::istream& in, std::size_t nx,
                               std::size_t ny) {
  std::vector<double> data;
  data.reserve(nx * ny);
  for (std::size_t j = 0; j < ny; ++j) {
    std::istringstream row(next_line(in, "data row"));
    std::string cell;
    std::size_t i = 0;
    while (std::getline(row, cell, ',')) {
      if (i >= nx) {
        malformed("too many columns at row " + std::to_string(j + 1));
      }
      data.push_back(parse_cell(cell, j, i));
      ++i;
    }
    if (i != nx) {
      malformed("too few columns at row " + std::to_string(j + 1));
    }
  }
  return data;
}

}  // namespace

void write_grid(std::ostream& out, const field::GridField& grid) {
  write_header(out, "grid", grid);
  write_rows(out, grid);
}

void write_grid_file(const std::string& path, const field::GridField& grid) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  write_grid(out, grid);
}

field::GridField read_grid(std::istream& in) {
  parse_magic(in, "# cps-grid v1");
  const num::Rect bounds = parse_bounds(in);
  const auto [nx, ny] = parse_shape(in);
  return field::GridField(bounds, nx, ny, parse_rows(in, nx, ny));
}

field::GridField read_grid_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return read_grid(in);
}

void write_trace(std::ostream& out, const field::FrameSequenceField& t) {
  write_header(out, "trace", t.frame(0));
  out << "# frames " << t.frame_count() << '\n';
  for (std::size_t f = 0; f < t.frame_count(); ++f) {
    // Scoped: timestamps need full precision, the caller's stream must
    // come back unchanged.
    const PrecisionGuard guard(out, 17);
    out << "# t " << t.timestamp(f) << '\n';
    write_rows(out, t.frame(f));
  }
}

void write_trace_file(const std::string& path,
                      const field::FrameSequenceField& t) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace_io: cannot open " + path);
  write_trace(out, t);
}

field::FrameSequenceField read_trace(std::istream& in) {
  parse_magic(in, "# cps-trace v1");
  const num::Rect bounds = parse_bounds(in);
  const auto [nx, ny] = parse_shape(in);

  std::istringstream ls(next_line(in, "frames"));
  std::string hash;
  std::string word;
  std::size_t count = 0;
  if (!(ls >> hash >> word >> count) || hash != "#" || word != "frames" ||
      count == 0) {
    malformed("frames line");
  }

  std::vector<field::GridField> frames;
  std::vector<double> stamps;
  frames.reserve(count);
  stamps.reserve(count);
  for (std::size_t f = 0; f < count; ++f) {
    std::istringstream ts(next_line(in, "t line"));
    double t = 0.0;
    if (!(ts >> hash >> word >> t) || hash != "#" || word != "t") {
      malformed("t line");
    }
    stamps.push_back(t);
    frames.emplace_back(bounds, nx, ny, parse_rows(in, nx, ny));
  }
  return field::FrameSequenceField(std::move(frames), std::move(stamps));
}

field::FrameSequenceField read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace_io: cannot open " + path);
  return read_trace(in);
}

}  // namespace cps::trace
