// Trace persistence: CSV round-tripping for grid frames and frame
// sequences, in the spirit of the GreenOrbs public data page (plain-text
// per-hour dumps).
//
// Formats
//   Grid file:
//     # cps-grid v1
//     # bounds x0 y0 x1 y1
//     # shape nx ny
//     <ny rows of nx comma-separated values, row j = y index j>
//   Trace file:
//     # cps-trace v1
//     # bounds x0 y0 x1 y1
//     # shape nx ny
//     # frames n
//     repeated n times:
//       # t <timestamp>
//       <ny rows of nx comma-separated values>
#pragma once

#include <iosfwd>
#include <string>

#include "field/grid_field.hpp"
#include "field/time_varying.hpp"

namespace cps::trace {

/// Serialises a grid frame.  Stream variants never touch the filesystem;
/// path variants throw std::runtime_error when the file cannot be opened.
void write_grid(std::ostream& out, const field::GridField& grid);
void write_grid_file(const std::string& path, const field::GridField& grid);

/// Parses a grid frame; throws std::runtime_error on malformed input.
field::GridField read_grid(std::istream& in);
field::GridField read_grid_file(const std::string& path);

/// Serialises a frame sequence.
void write_trace(std::ostream& out, const field::FrameSequenceField& t);
void write_trace_file(const std::string& path,
                      const field::FrameSequenceField& t);

/// Parses a frame sequence; throws std::runtime_error on malformed input.
field::FrameSequenceField read_trace(std::istream& in);
field::FrameSequenceField read_trace_file(const std::string& path);

}  // namespace cps::trace
