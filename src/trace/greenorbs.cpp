#include "trace/greenorbs.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "field/analytic_fields.hpp"  // fieldtag::kGreenOrbs
#include "numerics/rng.hpp"
#include "parallel/simd.hpp"

namespace cps::trace {

GreenOrbsField::GreenOrbsField(const GreenOrbsConfig& config)
    : config_(config),
      noise_(config.seed ^ 0xa5a5a5a5ULL, config.noise_frequency) {
  if (config.region.width() <= 0.0 || config.region.height() <= 0.0) {
    throw std::invalid_argument("GreenOrbsField: empty region");
  }
  if (config.gap_count < 0) {
    throw std::invalid_argument("GreenOrbsField: gap_count < 0");
  }
  if (config.amplitude_min <= 0.0 ||
      config.amplitude_max < config.amplitude_min) {
    throw std::invalid_argument("GreenOrbsField: amplitude range");
  }
  if (config.sigma_min <= 0.0 || config.sigma_max < config.sigma_min) {
    throw std::invalid_argument("GreenOrbsField: sigma range");
  }
  if (config.sunrise >= config.sunset) {
    throw std::invalid_argument("GreenOrbsField: sunrise >= sunset");
  }
  if (config.flutter_fraction < 0.0 || config.flutter_fraction > 1.0) {
    throw std::invalid_argument("GreenOrbsField: flutter fraction");
  }
  if (config.flutter_period <= 0.0) {
    throw std::invalid_argument("GreenOrbsField: flutter period");
  }

  num::Rng rng(config.seed);
  gaps_.reserve(static_cast<std::size_t>(config.gap_count));
  for (int i = 0; i < config.gap_count; ++i) {
    Gap g;
    g.center0 = {rng.uniform(config_.region.x0, config_.region.x1),
                 rng.uniform(config_.region.y0, config_.region.y1)};
    const double heading = rng.uniform(0.0, 2.0 * std::numbers::pi);
    g.drift = geo::Vec2{std::cos(heading), std::sin(heading)} *
              (config.drift_speed * rng.uniform(0.5, 1.5));
    g.amplitude = rng.uniform(config.amplitude_min, config.amplitude_max);
    g.sigma = rng.uniform(config.sigma_min, config.sigma_max);
    g.flutter_phase = rng.uniform(0.0, 2.0 * std::numbers::pi);
    gaps_.push_back(g);
  }
}

double GreenOrbsField::envelope(double t) const noexcept {
  if (t <= config_.sunrise || t >= config_.sunset) return 0.0;
  const double phase =
      (t - config_.sunrise) / (config_.sunset - config_.sunrise);
  return std::sin(std::numbers::pi * phase);
}

geo::Vec2 GreenOrbsField::gap_center(const Gap& g, double t) const noexcept {
  geo::Vec2 c = g.center0 + g.drift * t;
  // Reflect the drifted centre back into the region so gaps never leave the
  // window entirely (a gap wandering off would make late frames trivially
  // flat).
  const auto reflect = [](double v, double lo, double hi) {
    const double span = hi - lo;
    double u = std::fmod(v - lo, 2.0 * span);
    if (u < 0.0) u += 2.0 * span;
    return lo + (u <= span ? u : 2.0 * span - u);
  };
  c.x = reflect(c.x, config_.region.x0, config_.region.x1);
  c.y = reflect(c.y, config_.region.y0, config_.region.y1);
  return c;
}

double GreenOrbsField::do_value(geo::Vec2 p, double t) const {
  const double env = envelope(t);
  if (env == 0.0) return 0.0;
  double light = config_.base_light;
  for (const auto& g : gaps_) {
    const double flutter =
        1.0 + config_.flutter_fraction *
                  std::sin(2.0 * std::numbers::pi * t /
                               config_.flutter_period +
                           g.flutter_phase);
    const double r2 = geo::distance_sq(p, gap_center(g, t));
    light += g.amplitude * flutter *
             std::exp(-r2 / (2.0 * g.sigma * g.sigma));
  }
  light += config_.noise_amplitude * noise_.fbm(p.x, p.y, 3);
  return std::max(0.0, env * light);
}

void GreenOrbsField::do_value_row(double y, std::span<const double> xs,
                                  double t, double* out) const {
  const double env = envelope(t);
  if (env == 0.0) {
    std::fill(out, out + xs.size(), 0.0);
    return;
  }
  // Everything t-dependent — the diurnal envelope, each gap's fluttered
  // amplitude and drifted centre — is row-invariant; hoist it so the inner
  // loop is one Gaussian per gap per point.  The per-point expressions
  // match do_value exactly (amplitude * flutter associates left, so the
  // hoisted product is the same double).
  struct RowGap {
    geo::Vec2 center;
    double fluttered_amplitude;
    double two_sigma_sq;
  };
  thread_local std::vector<RowGap> row_gaps;
  row_gaps.clear();
  row_gaps.reserve(gaps_.size());
  for (const auto& g : gaps_) {
    const double flutter =
        1.0 + config_.flutter_fraction *
                  std::sin(2.0 * std::numbers::pi * t /
                               config_.flutter_period +
                           g.flutter_phase);
    row_gaps.push_back(RowGap{gap_center(g, t), g.amplitude * flutter,
                              2.0 * g.sigma * g.sigma});
  }
  // Gap-outer restructuring (same shape as GaussianMixtureField): per
  // point the accumulation still runs base + gap0 + gap1 + ... + noise in
  // that order, so every intermediate rounding matches do_value.  Each
  // gap's exponent arguments vectorize (distance_sq spelled out in its
  // dx*dx + dy*dy order); std::exp and the fbm noise stay scalar — the
  // vectorized libmvec variants are not bit-identical to scalar libm, and
  // fbm branches per octave.
  const std::size_t n = xs.size();
  thread_local std::vector<double> light, arg;
  light.resize(n);
  arg.resize(n);
  CPS_SIMD
  for (std::size_t i = 0; i < n; ++i) light[i] = config_.base_light;
  for (const auto& rg : row_gaps) {
    const double cx = rg.center.x;
    const double dy_sq = (y - rg.center.y) * (y - rg.center.y);
    const double two_sigma_sq = rg.two_sigma_sq;
    const double amplitude = rg.fluttered_amplitude;
    CPS_SIMD
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - cx;
      const double r2 = dx * dx + dy_sq;
      arg[i] = -r2 / two_sigma_sq;
    }
    for (std::size_t i = 0; i < n; ++i) arg[i] = std::exp(arg[i]);
    CPS_SIMD
    for (std::size_t i = 0; i < n; ++i) light[i] += amplitude * arg[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    light[i] += config_.noise_amplitude * noise_.fbm(xs[i], y, 3);
  }
  CPS_SIMD
  for (std::size_t i = 0; i < n; ++i) out[i] = std::max(0.0, env * light[i]);
}

std::uint64_t GreenOrbsField::do_content_key() const {
  namespace fk = field::fieldkey;
  std::uint64_t h = field::fieldtag::kGreenOrbs;
  h = fk::combine(h, fk::bits(config_.region.x0));
  h = fk::combine(h, fk::bits(config_.region.y0));
  h = fk::combine(h, fk::bits(config_.region.x1));
  h = fk::combine(h, fk::bits(config_.region.y1));
  h = fk::combine(h, config_.seed);
  h = fk::combine(h, static_cast<std::uint64_t>(config_.gap_count));
  h = fk::combine(h, fk::bits(config_.base_light));
  h = fk::combine(h, fk::bits(config_.amplitude_min));
  h = fk::combine(h, fk::bits(config_.amplitude_max));
  h = fk::combine(h, fk::bits(config_.sigma_min));
  h = fk::combine(h, fk::bits(config_.sigma_max));
  h = fk::combine(h, fk::bits(config_.drift_speed));
  h = fk::combine(h, fk::bits(config_.flutter_fraction));
  h = fk::combine(h, fk::bits(config_.flutter_period));
  h = fk::combine(h, fk::bits(config_.noise_amplitude));
  h = fk::combine(h, fk::bits(config_.noise_frequency));
  h = fk::combine(h, fk::bits(config_.sunrise));
  return fk::combine(h, fk::bits(config_.sunset));
}

field::GridField GreenOrbsField::snapshot(double t, std::size_t nx,
                                          std::size_t ny) const {
  const field::FieldSlice slice(*this, t);
  return field::GridField::sample(slice, config_.region, nx, ny);
}

field::FrameSequenceField GreenOrbsField::record(double t0, double t1,
                                                 double dt, std::size_t nx,
                                                 std::size_t ny) const {
  if (dt <= 0.0) throw std::invalid_argument("record: dt <= 0");
  if (t1 < t0) throw std::invalid_argument("record: t1 < t0");
  std::vector<field::GridField> frames;
  std::vector<double> stamps;
  for (double t = t0; t <= t1 + 1e-9; t += dt) {
    frames.push_back(snapshot(t, nx, ny));
    stamps.push_back(t);
  }
  return field::FrameSequenceField(std::move(frames), std::move(stamps));
}

}  // namespace cps::trace
