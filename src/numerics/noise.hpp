// Smooth deterministic 2-D value noise.  The synthetic GreenOrbs-like trace
// layers this under the RBF bumps to mimic small-scale canopy texture.
#pragma once

#include <cstdint>

namespace cps::num {

/// Lattice value noise with cosine interpolation plus fractal octaves.
/// Output of `sample` is in roughly [-1, 1]; `fbm` sums `octaves` layers at
/// doubling frequency and halving amplitude (normalised back to ~[-1, 1]).
class ValueNoise {
 public:
  /// `frequency` is cells per unit distance (> 0, else
  /// std::invalid_argument).
  explicit ValueNoise(std::uint64_t seed, double frequency = 0.05);

  /// Single-octave smooth noise at (x, y).
  double sample(double x, double y) const noexcept;

  /// Fractal Brownian motion: octaves >= 1 (else std::invalid_argument).
  double fbm(double x, double y, int octaves) const;

 private:
  double lattice(std::int64_t ix, std::int64_t iy) const noexcept;

  std::uint64_t seed_;
  double frequency_;
};

}  // namespace cps::num
