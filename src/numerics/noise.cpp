#include "numerics/noise.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cps::num {
namespace {

std::uint64_t hash_mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Cosine ease curve: smooth C^1 blend between lattice values.
double ease(double t) noexcept {
  return 0.5 - 0.5 * std::cos(t * std::numbers::pi);
}

}  // namespace

ValueNoise::ValueNoise(std::uint64_t seed, double frequency)
    : seed_(seed), frequency_(frequency) {
  if (frequency <= 0.0) throw std::invalid_argument("ValueNoise: frequency");
}

double ValueNoise::lattice(std::int64_t ix, std::int64_t iy) const noexcept {
  const std::uint64_t h = hash_mix(
      seed_ ^ (static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL) ^
      (static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
}

double ValueNoise::sample(double x, double y) const noexcept {
  const double fx = x * frequency_;
  const double fy = y * frequency_;
  const auto ix = static_cast<std::int64_t>(std::floor(fx));
  const auto iy = static_cast<std::int64_t>(std::floor(fy));
  const double tx = ease(fx - static_cast<double>(ix));
  const double ty = ease(fy - static_cast<double>(iy));
  const double v00 = lattice(ix, iy);
  const double v10 = lattice(ix + 1, iy);
  const double v01 = lattice(ix, iy + 1);
  const double v11 = lattice(ix + 1, iy + 1);
  const double a = v00 * (1.0 - tx) + v10 * tx;
  const double b = v01 * (1.0 - tx) + v11 * tx;
  return a * (1.0 - ty) + b * ty;
}

double ValueNoise::fbm(double x, double y, int octaves) const {
  if (octaves < 1) throw std::invalid_argument("ValueNoise::fbm: octaves");
  double sum = 0.0;
  double amp = 1.0;
  double total = 0.0;
  double scale = 1.0;
  for (int o = 0; o < octaves; ++o) {
    ValueNoise layer(seed_ + static_cast<std::uint64_t>(o) * 0x51ed2701ULL,
                     frequency_ * scale);
    sum += amp * layer.sample(x, y);
    total += amp;
    amp *= 0.5;
    scale *= 2.0;
  }
  return sum / total;
}

}  // namespace cps::num
