// Small dense linear algebra: just enough to support the least-squares
// quadric fits (Eqn. 11 of the paper) and relay/geometry computations.
//
// Matrices are row-major, dynamically sized, and value-semantic.  The
// library deliberately avoids expression templates: every matrix in this
// system is tiny (m x 3 for curvature fits, <= 16 x 16 elsewhere), so
// clarity wins over micro-optimisation.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace cps::num {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  /// Throws std::invalid_argument if exactly one dimension is zero.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must be equally long.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Element access with bounds checking; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s) noexcept;

  /// Matrix-vector product; v.size() must equal cols().
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square system A x = b by Gaussian elimination with partial
/// pivoting.  Throws std::invalid_argument on dimension mismatch and
/// std::domain_error when A is (numerically) singular.
std::vector<double> solve(Matrix a, std::vector<double> b);

/// Determinant via LU factorisation (partial pivoting).  Square only.
double determinant(Matrix a);

/// Inverse of a square matrix; throws std::domain_error when singular.
Matrix inverse(const Matrix& a);

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& v) noexcept;

/// Dot product; sizes must match (std::invalid_argument otherwise).
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace cps::num
