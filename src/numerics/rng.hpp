// Deterministic pseudo-random number generation for reproducible simulation.
//
// All stochastic components of the library (random deployment baselines,
// synthetic trace generation, property-test sweeps) draw from cps::num::Rng
// so that a (seed, parameter) pair always reproduces the same run.  The
// generator is xoshiro256**, which is small, fast, and has no measurable
// bias for the statistical loads used here.
#pragma once

#include <cstdint>
#include <vector>

namespace cps::num {

/// Deterministic 64-bit PRNG (xoshiro256**) with convenience samplers.
///
/// Copyable and cheap to fork: `fork(tag)` derives an independent stream,
/// which lets concurrent subsystems (e.g. per-node jitter) stay reproducible
/// regardless of call interleaving.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give unrelated
  /// streams.  Any seed, including 0, is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi; returns lo when equal.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal variate (Box-Muller; caches the second value).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Derives an independent generator; streams with different tags do not
  /// overlap in practice (distinct splitmix64 seeding paths).
  Rng fork(std::uint64_t tag) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cps::num
