#include "numerics/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace cps::num {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  if ((rows == 0) != (cols == 0)) {
    throw std::invalid_argument("Matrix: one dimension is zero");
  }
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix*: dim mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) += v * rhs(k, c);
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix+: dim mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix-: dim mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  if (v.size() != cols_) throw std::invalid_argument("Matrix::apply: dim");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += (*this)(r, c) * v[c];
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

namespace {

// In-place LU with partial pivoting.  Returns the permutation sign, or 0 if
// singular.  `a` must be square.
int lu_decompose(Matrix& a, std::vector<std::size_t>& perm) {
  const std::size_t n = a.rows();
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return 0;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(perm[col], perm[pivot]);
      sign = -sign;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      a(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
    }
  }
  return sign;
}

}  // namespace

std::vector<double> solve(Matrix a, std::vector<double> b) {
  if (a.rows() != a.cols()) throw std::invalid_argument("solve: not square");
  if (b.size() != a.rows()) throw std::invalid_argument("solve: b size");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm;
  if (lu_decompose(a, perm) == 0) throw std::domain_error("solve: singular");
  std::vector<double> x(n);
  // Forward substitution on the permuted RHS.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) s -= a(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

double determinant(Matrix a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("determinant: not square");
  }
  std::vector<std::size_t> perm;
  const int sign = lu_decompose(a, perm);
  if (sign == 0) return 0.0;
  double d = sign;
  for (std::size_t i = 0; i < a.rows(); ++i) d *= a(i, i);
  return d;
}

Matrix inverse(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("inverse: not square");
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> e(n, 0.0);
    e[c] = 1.0;
    const auto col = solve(a, std::move(e));
    for (std::size_t r = 0; r < n; ++r) out(r, c) = col[r];
  }
  return out;
}

double norm2(const std::vector<double>& v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace cps::num
