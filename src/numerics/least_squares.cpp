#include "numerics/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace cps::num {

std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("least_squares: b size");
  if (m < n) throw std::invalid_argument("least_squares: underdetermined");

  // Householder QR applied to [A | b] in place.
  Matrix r = a;
  std::vector<double> rhs = b;
  for (std::size_t col = 0; col < n; ++col) {
    double norm = 0.0;
    for (std::size_t i = col; i < m; ++i) norm += r(i, col) * r(i, col);
    norm = std::sqrt(norm);
    if (norm < 1e-12) throw std::domain_error("least_squares: rank deficient");
    const double alpha = r(col, col) > 0 ? -norm : norm;
    std::vector<double> v(m - col);
    v[0] = r(col, col) - alpha;
    for (std::size_t i = col + 1; i < m; ++i) v[i - col] = r(i, col);
    double vnorm2 = 0.0;
    for (double x : v) vnorm2 += x * x;
    if (vnorm2 < 1e-30) continue;  // Column already triangular.
    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and the RHS.
    for (std::size_t c = col; c < n; ++c) {
      double proj = 0.0;
      for (std::size_t i = col; i < m; ++i) proj += v[i - col] * r(i, c);
      proj = 2.0 * proj / vnorm2;
      for (std::size_t i = col; i < m; ++i) r(i, c) -= proj * v[i - col];
    }
    double proj = 0.0;
    for (std::size_t i = col; i < m; ++i) proj += v[i - col] * rhs[i];
    proj = 2.0 * proj / vnorm2;
    for (std::size_t i = col; i < m; ++i) rhs[i] -= proj * v[i - col];
  }

  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    const double d = r(ii, ii);
    if (std::abs(d) < 1e-12) {
      throw std::domain_error("least_squares: rank deficient");
    }
    x[ii] = s / d;
  }
  return x;
}

std::vector<double> least_squares_normal(const Matrix& a,
                                         const std::vector<double>& b) {
  if (b.size() != a.rows()) {
    throw std::invalid_argument("least_squares_normal: b size");
  }
  const Matrix at = a.transposed();
  return solve(at * a, at.apply(b));
}

double QuadricFit::g1() const noexcept {
  return a + c - std::sqrt((a - c) * (a - c) + b * b);
}

double QuadricFit::g2() const noexcept {
  return a + c + std::sqrt((a - c) * (a - c) + b * b);
}

double QuadricFit::gaussian() const noexcept { return g1() * g2(); }

double QuadricFit::mean() const noexcept { return a + c; }

double QuadricFit::evaluate(double dx, double dy) const noexcept {
  return a * dx * dx + b * dx * dy + c * dy * dy;
}

QuadricFit fit_quadric(std::span<const QuadricSample> samples) {
  if (samples.size() < 3) {
    throw std::invalid_argument("fit_quadric: need >= 3 samples");
  }
  // Normal equations on the 3-parameter design; with a tiny ridge term the
  // 3x3 system is always solvable, and for well-posed designs the ridge
  // perturbs the result below measurement noise.
  Matrix ata(3, 3, 0.0);
  std::vector<double> atb(3, 0.0);
  for (const auto& s : samples) {
    const double row[3] = {s.dx * s.dx, s.dx * s.dy, s.dy * s.dy};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        ata(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) +=
            row[i] * row[j];
      }
      atb[static_cast<std::size_t>(i)] += row[i] * s.dz;
    }
  }
  const double ridge = 1e-9 * (1.0 + ata.frobenius_norm());
  for (std::size_t i = 0; i < 3; ++i) ata(i, i) += ridge;
  const auto x = solve(std::move(ata), std::move(atb));
  return QuadricFit{x[0], x[1], x[2]};
}

}  // namespace cps::num
