// 2-D quadrature over rectangular regions.  Used by the delta metric
// (Theorem 3.1: the volume difference between the referential and rebuilt
// surface polytopes reduces to the integral of |f - DT| over the region).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace cps::num {

/// Axis-aligned rectangle [x0, x1] x [y0, y1].
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const noexcept { return x1 - x0; }
  double height() const noexcept { return y1 - y0; }
  double area() const noexcept { return width() * height(); }
  bool contains(double x, double y) const noexcept {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
};

/// The midpoint-rule evaluation lattice over a rect: cell midpoints
/// x_i = x0 + (i + 0.5) hx, y_j = y0 + (j + 0.5) hy.  One definition shared
/// by integrate_midpoint and the delta metric so their grids are the same
/// bits — the abscissae are precomputed once per lattice and handed to
/// batched row kernels (field::Field::value_row) instead of being
/// re-derived per row.  Throws std::invalid_argument when nx or ny is zero
/// or the rect is inverted.
class MidpointLattice {
 public:
  MidpointLattice(const Rect& rect, std::size_t nx, std::size_t ny);

  std::size_t nx() const noexcept { return xs_.size(); }
  std::size_t ny() const noexcept { return ny_; }
  double hx() const noexcept { return hx_; }
  double hy() const noexcept { return hy_; }

  /// All row abscissae (shared by every row).
  std::span<const double> xs() const noexcept { return xs_; }

  /// Ordinate of row j.
  double y(std::size_t j) const noexcept {
    return y0_ + (static_cast<double>(j) + 0.5) * hy_;
  }

 private:
  double y0_ = 0.0;
  double hx_ = 0.0;
  double hy_ = 0.0;
  std::size_t ny_ = 0;
  std::vector<double> xs_;
};

/// Fills out[i] with the integrand at (xs[i], y); out holds xs.size() slots.
using RowFn =
    std::function<void(double y, std::span<const double> xs, double* out)>;

/// Midpoint-rule integration driven by a batched row evaluator: each lattice
/// row is filled by one `row` call, then accumulated left to right — the
/// same accumulation order as integrate_midpoint, so the two agree bitwise
/// for integrands evaluated identically.
double integrate_midpoint_rows(const Rect& rect, const RowFn& row,
                               std::size_t nx, std::size_t ny);

/// Midpoint-rule integration of g over `rect` on an nx x ny cell grid.
/// Error is O(h^2) for C^2 integrands; for the |f - DT| integrands used by
/// the delta metric (piecewise C^1) it converges O(h) near kinks, which the
/// convergence tests characterise.  Throws std::invalid_argument when nx or
/// ny is zero or the rect is inverted.
double integrate_midpoint(const Rect& rect,
                          const std::function<double(double, double)>& g,
                          std::size_t nx, std::size_t ny);

/// Trapezoid-rule integration on the same grid (samples cell corners).
double integrate_trapezoid(const Rect& rect,
                           const std::function<double(double, double)>& g,
                           std::size_t nx, std::size_t ny);

}  // namespace cps::num
