// 2-D quadrature over rectangular regions.  Used by the delta metric
// (Theorem 3.1: the volume difference between the referential and rebuilt
// surface polytopes reduces to the integral of |f - DT| over the region).
#pragma once

#include <cstddef>
#include <functional>

namespace cps::num {

/// Axis-aligned rectangle [x0, x1] x [y0, y1].
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const noexcept { return x1 - x0; }
  double height() const noexcept { return y1 - y0; }
  double area() const noexcept { return width() * height(); }
  bool contains(double x, double y) const noexcept {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
};

/// Midpoint-rule integration of g over `rect` on an nx x ny cell grid.
/// Error is O(h^2) for C^2 integrands; for the |f - DT| integrands used by
/// the delta metric (piecewise C^1) it converges O(h) near kinks, which the
/// convergence tests characterise.  Throws std::invalid_argument when nx or
/// ny is zero or the rect is inverted.
double integrate_midpoint(const Rect& rect,
                          const std::function<double(double, double)>& g,
                          std::size_t nx, std::size_t ny);

/// Trapezoid-rule integration on the same grid (samples cell corners).
double integrate_trapezoid(const Rect& rect,
                           const std::function<double(double, double)>& g,
                           std::size_t nx, std::size_t ny);

}  // namespace cps::num
