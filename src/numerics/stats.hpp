// Streaming and batch statistics used by benches and trace analysis.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace cps::num {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max, with O(1) state.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// +inf / -inf when empty, mirroring std::numeric_limits conventions.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel Welford combine).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile by linear interpolation on a copy of the data (p in [0, 100]).
/// Throws std::invalid_argument when data is empty or p out of range.
double percentile(std::span<const double> data, double p);

/// Arithmetic mean; throws std::invalid_argument when empty.
double mean(std::span<const double> data);

/// Root-mean-square error between two equally sized series.
double rmse(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; throws on size mismatch / n < 2 /
/// zero-variance inputs.
double pearson(std::span<const double> a, std::span<const double> b);

/// Index of the first element from which the series stays within
/// `tolerance` (relative to the final value) until the end — the
/// "convergence slot" measurement used by the Fig. 10 bench.  Returns
/// data.size() when the series never settles.
std::size_t convergence_index(std::span<const double> data, double tolerance);

}  // namespace cps::num
