#include "numerics/quadrature.hpp"

#include <stdexcept>

#include "parallel/simd.hpp"

namespace cps::num {
namespace {

void validate(const Rect& rect, std::size_t nx, std::size_t ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("integrate: zero cells");
  }
  if (rect.x1 < rect.x0 || rect.y1 < rect.y0) {
    throw std::invalid_argument("integrate: inverted rect");
  }
}

}  // namespace

MidpointLattice::MidpointLattice(const Rect& rect, std::size_t nx,
                                 std::size_t ny)
    : y0_(rect.y0),
      hx_(rect.width() / static_cast<double>(nx)),
      hy_(rect.height() / static_cast<double>(ny)),
      ny_(ny) {
  validate(rect, nx, ny);
  xs_.resize(nx);
  double* xs = xs_.data();
  CPS_SIMD
  for (std::size_t i = 0; i < nx; ++i) {
    xs[i] = rect.x0 + (static_cast<double>(i) + 0.5) * hx_;
  }
}

double integrate_midpoint_rows(const Rect& rect, const RowFn& row,
                               std::size_t nx, std::size_t ny) {
  const MidpointLattice lat(rect, nx, ny);
  std::vector<double> buf(nx);
  double sum = 0.0;
  for (std::size_t j = 0; j < ny; ++j) {
    row(lat.y(j), lat.xs(), buf.data());
    // Serial accumulation, deliberately: a vectorized reduction would
    // re-associate the sum and change the result's bits.  The row
    // evaluation above is where the SIMD kernels earn their keep.
    for (std::size_t i = 0; i < nx; ++i) sum += buf[i];
  }
  return sum * lat.hx() * lat.hy();
}

double integrate_midpoint(const Rect& rect,
                          const std::function<double(double, double)>& g,
                          std::size_t nx, std::size_t ny) {
  return integrate_midpoint_rows(
      rect,
      [&](double y, std::span<const double> xs, double* out) {
        for (std::size_t i = 0; i < xs.size(); ++i) out[i] = g(xs[i], y);
      },
      nx, ny);
}

double integrate_trapezoid(const Rect& rect,
                           const std::function<double(double, double)>& g,
                           std::size_t nx, std::size_t ny) {
  validate(rect, nx, ny);
  const double hx = rect.width() / static_cast<double>(nx);
  const double hy = rect.height() / static_cast<double>(ny);
  double sum = 0.0;
  for (std::size_t j = 0; j <= ny; ++j) {
    const double y = rect.y0 + static_cast<double>(j) * hy;
    const double wy = (j == 0 || j == ny) ? 0.5 : 1.0;
    for (std::size_t i = 0; i <= nx; ++i) {
      const double x = rect.x0 + static_cast<double>(i) * hx;
      const double wx = (i == 0 || i == nx) ? 0.5 : 1.0;
      sum += wx * wy * g(x, y);
    }
  }
  return sum * hx * hy;
}

}  // namespace cps::num
