#include "numerics/quadrature.hpp"

#include <stdexcept>

namespace cps::num {
namespace {

void validate(const Rect& rect, std::size_t nx, std::size_t ny) {
  if (nx == 0 || ny == 0) {
    throw std::invalid_argument("integrate: zero cells");
  }
  if (rect.x1 < rect.x0 || rect.y1 < rect.y0) {
    throw std::invalid_argument("integrate: inverted rect");
  }
}

}  // namespace

double integrate_midpoint(const Rect& rect,
                          const std::function<double(double, double)>& g,
                          std::size_t nx, std::size_t ny) {
  validate(rect, nx, ny);
  const double hx = rect.width() / static_cast<double>(nx);
  const double hy = rect.height() / static_cast<double>(ny);
  double sum = 0.0;
  for (std::size_t j = 0; j < ny; ++j) {
    const double y = rect.y0 + (static_cast<double>(j) + 0.5) * hy;
    for (std::size_t i = 0; i < nx; ++i) {
      const double x = rect.x0 + (static_cast<double>(i) + 0.5) * hx;
      sum += g(x, y);
    }
  }
  return sum * hx * hy;
}

double integrate_trapezoid(const Rect& rect,
                           const std::function<double(double, double)>& g,
                           std::size_t nx, std::size_t ny) {
  validate(rect, nx, ny);
  const double hx = rect.width() / static_cast<double>(nx);
  const double hy = rect.height() / static_cast<double>(ny);
  double sum = 0.0;
  for (std::size_t j = 0; j <= ny; ++j) {
    const double y = rect.y0 + static_cast<double>(j) * hy;
    const double wy = (j == 0 || j == ny) ? 0.5 : 1.0;
    for (std::size_t i = 0; i <= nx; ++i) {
      const double x = rect.x0 + static_cast<double>(i) * hx;
      const double wx = (i == 0 || i == nx) ? 0.5 : 1.0;
      sum += wx * wy * g(x, y);
    }
  }
  return sum * hx * hy;
}

}  // namespace cps::num
