// Overdetermined least-squares solvers and the quadric surface fit used by
// the paper's curvature estimator (Section 5.2, Eqn. 11).
//
// The m nearest-neighbours method fits z = a x^2 + b x y + c y^2 to samples
// expressed in node-local coordinates; principal curvatures follow from
// Eqns. 12-13 and the Gaussian curvature is their product.
#pragma once

#include <span>
#include <vector>

#include "numerics/linalg.hpp"

namespace cps::num {

/// Solves min ||A x - b||_2 for a tall (rows >= cols) design matrix.
///
/// Uses Householder QR, which is numerically safer than normal equations
/// for the mildly ill-conditioned designs produced by clustered samples.
/// Throws std::invalid_argument on dimension mismatch and std::domain_error
/// when A is rank-deficient to working precision.
std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b);

/// Solves via the normal equations A^T A x = A^T b.  Faster for the tiny
/// 3-column systems in the curvature path; kept public for benchmarking the
/// trade-off (see bench_micro_substrate).
std::vector<double> least_squares_normal(const Matrix& a,
                                         const std::vector<double>& b);

/// One sample for the quadric fit, in coordinates local to the fitting node
/// (dx = x - x0, dy = y - y0, dz = z - z0).
struct QuadricSample {
  double dx = 0.0;
  double dy = 0.0;
  double dz = 0.0;
};

/// Coefficients of z = a x^2 + b x y + c y^2 plus derived curvatures.
struct QuadricFit {
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  /// Principal curvatures per the paper's m nearest-neighbours formulas:
  /// g1 = a + c - sqrt((a-c)^2 + b^2), g2 = a + c + sqrt((a-c)^2 + b^2).
  double g1() const noexcept;
  double g2() const noexcept;

  /// Gaussian curvature G = g1 * g2.
  double gaussian() const noexcept;

  /// Mean curvature (g1 + g2) / 2 = a + c; used by ablations.
  double mean() const noexcept;

  /// Evaluates the fitted quadric at local offset (dx, dy).
  double evaluate(double dx, double dy) const noexcept;
};

/// Fits the quadric to >= 3 samples (paper: m = floor(pi Rs^2) grid samples
/// inside the sensing disk).  Throws std::invalid_argument with fewer than
/// 3 samples; falls back to a tiny ridge term when the design is singular
/// (all samples collinear through the origin), so the caller always gets a
/// finite fit.
QuadricFit fit_quadric(std::span<const QuadricSample> samples);

}  // namespace cps::num
