#include "numerics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cps::num {

void RunningStats::add(double x) noexcept {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double d = other.mean_ - mean_;
  m2_ += other.m2_ +
         d * d * static_cast<double>(n_) * static_cast<double>(other.n_) /
             total;
  mean_ += d * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> data, double p) {
  if (data.empty()) throw std::invalid_argument("percentile: empty");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: range");
  std::vector<double> v(data.begin(), data.end());
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean(std::span<const double> data) {
  if (data.empty()) throw std::invalid_argument("mean: empty");
  double s = 0.0;
  for (double x : data) s += x;
  return s / static_cast<double>(data.size());
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("rmse: size mismatch or empty");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("pearson: size");
  if (a.size() < 2) throw std::invalid_argument("pearson: n < 2");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sab += (a[i] - ma) * (b[i] - mb);
    saa += (a[i] - ma) * (a[i] - ma);
    sbb += (b[i] - mb) * (b[i] - mb);
  }
  if (saa == 0.0 || sbb == 0.0) {
    throw std::invalid_argument("pearson: zero variance");
  }
  return sab / std::sqrt(saa * sbb);
}

std::size_t convergence_index(std::span<const double> data, double tolerance) {
  if (data.empty()) return 0;
  const double target = data.back();
  const double band =
      tolerance * std::max(std::abs(target), 1e-12);
  std::size_t idx = data.size();
  for (std::size_t i = data.size(); i-- > 0;) {
    if (std::abs(data[i] - target) <= band) {
      idx = i;
    } else {
      break;
    }
  }
  return idx;
}

}  // namespace cps::num
