#include "numerics/rng.hpp"

#include <cmath>
#include <numbers>

namespace cps::num {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>(next_u64());
  // Rejection-free Lemire-style mapping is overkill here; modulo bias is
  // below 2^-53 for the ranges used in the library (< 2^20).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork(std::uint64_t tag) noexcept {
  return Rng(next_u64() ^ (tag * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL));
}

}  // namespace cps::num
