#include "obs/trace.hpp"

#include <chrono>
#include <ostream>

#include "obs/metrics.hpp"

namespace cps::obs {
namespace {

std::uint32_t next_tid() noexcept {
  static std::atomic<std::uint32_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Small dense thread id (0 = first thread to record), stable per thread.
std::uint32_t this_tid() noexcept {
  thread_local const std::uint32_t tid = next_tid();
  return tid;
}

constexpr std::size_t kThreadFlushThreshold = 4096;

void write_event_json(std::ostream& out, const TraceEvent& ev) {
  out << "{\"name\": \"" << (ev.name ? ev.name : "?")
      << "\", \"cat\": \"cps\", \"ph\": \"" << ev.phase
      << "\", \"ts\": " << ev.ts_us << ", \"pid\": 1, \"tid\": " << ev.tid;
  switch (ev.phase) {
    case 'X':
      out << ", \"dur\": " << ev.dur_us;
      break;
    case 'C':
      out << ", \"args\": {\"value\": " << ev.value << "}";
      break;
    case 'i':
      out << ", \"s\": \"t\"";  // Thread-scoped instant.
      break;
    default:
      break;
  }
  out << "}";
}

}  // namespace

std::int64_t now_us() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

// Per-thread buffer.  Constructed on a thread's first record *through the
// recorder instance*, so the recorder singleton outlives every buffer and
// the exit-time flush in the destructor is always safe.
struct ThreadBuffer {
  std::vector<TraceEvent> events;
  ~ThreadBuffer() { TraceRecorder::instance().absorb(events); }

  static ThreadBuffer& current() {
    thread_local ThreadBuffer buffer;
    return buffer;
  }
};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder r;
  return r;
}

void TraceRecorder::record(const TraceEvent& ev) noexcept {
  auto& buffer = ThreadBuffer::current().events;
  buffer.push_back(ev);
  if (buffer.size() >= kThreadFlushThreshold) absorb(buffer);
}

void TraceRecorder::complete(const char* name, std::int64_t ts_us,
                             std::int64_t dur_us) noexcept {
  if (!enabled()) return;
  record(TraceEvent{name, ts_us, dur_us, 0.0, this_tid(), 'X'});
}

void TraceRecorder::instant(const char* name) noexcept {
  if (!enabled()) return;
  record(TraceEvent{name, now_us(), 0, 0.0, this_tid(), 'i'});
}

void TraceRecorder::counter(const char* name, double value) noexcept {
  if (!enabled()) return;
  record(TraceEvent{name, now_us(), 0, value, this_tid(), 'C'});
}

void TraceRecorder::absorb(std::vector<TraceEvent>& buffer) {
  if (buffer.empty()) return;
  std::lock_guard lock(mutex_);
  const std::size_t room =
      events_.size() < capacity_ ? capacity_ - events_.size() : 0;
  const std::size_t take = buffer.size() < room ? buffer.size() : room;
  events_.insert(events_.end(), buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(take));
  dropped_.fetch_add(buffer.size() - take, std::memory_order_relaxed);
  buffer.clear();
}

void TraceRecorder::flush_current_thread() {
  absorb(ThreadBuffer::current().events);
}

std::vector<TraceEvent> TraceRecorder::snapshot() {
  flush_current_thread();
  std::lock_guard lock(mutex_);
  return events_;
}

void TraceRecorder::clear() {
  ThreadBuffer::current().events.clear();
  std::lock_guard lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void TraceRecorder::set_capacity(std::size_t max_events) {
  std::lock_guard lock(mutex_);
  capacity_ = max_events;
}

void TraceRecorder::write_chrome_json(std::ostream& out) {
  flush_current_thread();
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_event_json(out, events_[i]);
  }
  out << "\n]}\n";
}

void TraceRecorder::write_jsonl(std::ostream& out) {
  flush_current_thread();
  std::lock_guard lock(mutex_);
  for (const TraceEvent& ev : events_) {
    write_event_json(out, ev);
    out << "\n";
  }
}

}  // namespace cps::obs
