// Slot-scoped telemetry timeline: per-interval metric deltas.
//
// The registry answers "what happened over the whole run"; the figures in
// the paper are trajectories — δ(t) under CMA churn, δ(k) under FRA growth
// — so the interesting question is "what happened *between* slot 116 and
// slot 117".  The Timeline answers it by snapshotting the registry at
// phase boundaries (CmaSimulation::step, Fra iterations, δ evaluations)
// and storing only the diff against the previous snapshot:
//
//  * counters as per-interval increments,
//  * gauges as their new value when the bits changed,
//  * histograms as mergeable bucket diffs (count delta + per-bucket count
//    deltas) — summing a run of samples reconstructs the cumulative
//    histogram exactly.
//
// Determinism contract: for a deterministic simulation the JSONL output is
// byte-identical at any thread-pool size.  That is why samples carry a
// sequence number instead of a timestamp, why histogram deltas omit the
// float sum (its value depends on observation order across threads), and
// why wall-time histograms and environment gauges are registered
// timeline-excluded (Registry::duration_histogram / exclude_from_timeline).
//
// Like the TraceRecorder, the Timeline is a process-wide singleton armed
// by ObsSession; sample() and annotate() are cheap no-ops while disarmed,
// so instrumented phase boundaries cost one relaxed atomic load in
// figure-generation runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cps::obs {

/// One phase boundary: everything that changed since the previous sample.
struct TimelineSample {
  std::uint64_t seq = 0;       ///< 0-based position in the timeline.
  std::string label;           ///< Boundary kind, e.g. "core.cma.slot".
  std::int64_t index = 0;      ///< Caller's phase index (slot, iteration).
  /// Caller-supplied context (alive count, δ value, ...) attached via
  /// annotate() since the previous sample, in annotation order.
  std::vector<std::pair<std::string, double>> fields;
  /// Counter increments since the previous sample (nonzero only).
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
  /// Gauges whose bits changed since the previous sample (new value).
  std::vector<std::pair<std::string, double>> gauge_values;
  /// Histogram deltas: count increment + (bucket index, count increment)
  /// pairs for buckets that grew.
  struct HistDelta {
    std::string name;
    std::uint64_t count_delta = 0;
    std::vector<std::pair<std::uint8_t, std::uint64_t>> bucket_deltas;
  };
  std::vector<HistDelta> hist_deltas;
};

/// The process-wide timeline.  Thread-compatible, not thread-safe: samples
/// are taken at phase boundaries, which are single-threaded by
/// construction (worker fan-in has completed before the boundary).
class Timeline {
 public:
  static Timeline& instance();

  /// Arm/disarm sampling.  Disarmed (the default) sample()/annotate() are
  /// no-ops; arming does NOT clear accumulated samples (call clear()).
  void set_armed(bool on) noexcept {
    armed_.store(on, std::memory_order_relaxed);
  }
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Attaches a context field to the *next* sample().  `key` is kept as a
  /// string; values are doubles (counts fit exactly up to 2^53).
  void annotate(std::string_view key, double value);

  /// Snapshots the registry, diffs against the previous snapshot, and
  /// appends a sample carrying the pending annotations.  A metric whose
  /// current counter/histogram value is *smaller* than the previous
  /// snapshot's was reset in between (ObsSession does this per bench
  /// record); the delta is then the current value, i.e. everything since
  /// the reset.
  void sample(std::string_view label, std::int64_t index);

  /// Drops all samples, pending annotations and the baseline snapshot.
  void clear();

  std::size_t sample_count() const { return samples_.size(); }
  const TimelineSample& sample_at(std::size_t i) const {
    return samples_.at(i);
  }

  /// One JSON object per line, shaped
  /// {"seq": N, "label": "...", "index": I, "fields": {...},
  ///  "counters": {...}, "gauges": {...},
  ///  "histograms": {name: {"count": dc, "buckets": [[ub, dn], ...]}}},
  /// with empty sections omitted.  Doubles print round-trip exact
  /// (max_digits10) so equal samples are byte-equal.
  void write_jsonl(std::ostream& out) const;

 private:
  Timeline() = default;

  std::atomic<bool> armed_{false};
  std::vector<MetricSnapshot> prev_;
  bool have_prev_ = false;
  std::vector<std::pair<std::string, double>> pending_fields_;
  std::vector<TimelineSample> samples_;
};

/// Singleton shorthand, mirroring obs::trace().
inline Timeline& timeline() { return Timeline::instance(); }

}  // namespace cps::obs
