// Low-overhead trace-event recorder.
//
// Records timestamped events into per-thread buffers (no lock on the hot
// path) that are absorbed into a central store when they fill up, when a
// thread exits, or when a snapshot/writer needs them.  Output formats:
//
//  * Chrome trace JSON ({"traceEvents": [...]}): load the file in
//    chrome://tracing or https://ui.perfetto.dev to see the phase
//    structure of a bench run on a timeline.
//  * JSONL: one event object per line, for streaming/grep pipelines.
//
// Event names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy — that keeps a recorded event at 40
// bytes with no allocation outside buffer growth.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace cps::obs {

/// Microseconds since the process-wide monotonic epoch (first call).
std::int64_t now_us() noexcept;

/// One recorded event.  `phase` follows the Chrome trace format: 'X' is a
/// complete (duration) event, 'i' an instant, 'C' a counter sample.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  ///< 'X' only.
  double value = 0.0;       ///< 'C' only.
  std::uint32_t tid = 0;
  char phase = 'X';
};

/// The process-wide recorder.  All record calls are cheap no-ops while
/// obs::enabled() is false.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  /// Duration event covering [ts_us, ts_us + dur_us].
  void complete(const char* name, std::int64_t ts_us,
                std::int64_t dur_us) noexcept;
  /// Point-in-time marker.
  void instant(const char* name) noexcept;
  /// Sampled numeric series (renders as a counter track in Perfetto).
  void counter(const char* name, double value) noexcept;

  /// Moves the calling thread's buffered events into the central store.
  void flush_current_thread();

  /// Flushes the calling thread, then copies the central store.
  std::vector<TraceEvent> snapshot();

  /// Drops all buffered events (calling thread + central store).
  void clear();

  /// Events discarded after the capacity cap was hit.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Caps the central store (default 1M events ~ 40 MB); excess is dropped
  /// and counted, never reallocated away.
  void set_capacity(std::size_t max_events);

  /// Chrome trace format ({"traceEvents": [...]}).
  void write_chrome_json(std::ostream& out);
  /// One JSON object per line.
  void write_jsonl(std::ostream& out);

 private:
  TraceRecorder() = default;
  void record(const TraceEvent& ev) noexcept;
  void absorb(std::vector<TraceEvent>& buffer);

  friend struct ThreadBuffer;

  std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = 1u << 20;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Singleton shorthand.
inline TraceRecorder& trace() { return TraceRecorder::instance(); }

}  // namespace cps::obs
