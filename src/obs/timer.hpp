// RAII scoped timers.
//
// A ScopedTimer measures the wall time of its enclosing scope and, on
// exit, (a) observes the duration in microseconds into the histogram named
// after it and (b) emits a Chrome 'X' (complete) trace event, so nested
// timers render as nested slices on the trace timeline.  When
// obs::enabled() is false at construction the timer records nothing and
// costs one branch.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cps::obs {

class ScopedTimer {
 public:
  /// `name` must outlive the recorder (use a string literal); it is both
  /// the histogram metric name and the trace slice label, so it must
  /// follow the layer.component.metric scheme.
  explicit ScopedTimer(const char* name) noexcept {
    if (!enabled()) return;
    name_ = name;
    start_us_ = now_us();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (name_ == nullptr) return;
    const std::int64_t dur = now_us() - start_us_;
    // duration_histogram: wall time is nondeterministic, so timer
    // histograms are registered timeline-excluded.
    registry().duration_histogram(name_).observe(static_cast<double>(dur));
    trace().complete(name_, start_us_, dur);
  }

 private:
  const char* name_ = nullptr;  // nullptr = inactive (obs was off).
  std::int64_t start_us_ = 0;
};

}  // namespace cps::obs
