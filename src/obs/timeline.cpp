#include "obs/timeline.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <ostream>

namespace cps::obs {
namespace {

// Bitwise gauge comparison: -0.0 vs 0.0 and NaN payloads count as changes,
// which is what "emit when anything changed" wants and keeps the diff free
// of float-compare edge cases.
bool same_bits(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void write_json_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

void write_double(std::ostream& out, double v) {
  // JSON has no Infinity/NaN literals; annotations should never produce
  // them, but a sidecar must stay parseable if one slips through.
  if (std::isnan(v)) {
    out << "\"nan\"";
  } else if (std::isinf(v)) {
    out << (v > 0 ? "\"inf\"" : "\"-inf\"");
  } else {
    out << v;
  }
}

}  // namespace

Timeline& Timeline::instance() {
  static Timeline t;
  return t;
}

void Timeline::annotate(std::string_view key, double value) {
  if (!armed()) return;
  pending_fields_.emplace_back(std::string(key), value);
}

void Timeline::sample(std::string_view label, std::int64_t index) {
  if (!armed()) return;
  std::vector<MetricSnapshot> cur = registry().snapshot();

  TimelineSample s;
  s.seq = samples_.size();
  s.label = std::string(label);
  s.index = index;
  s.fields = std::move(pending_fields_);
  pending_fields_.clear();

  // Both snapshots are sorted by name (registry map order); merge-walk.
  // A metric absent from prev_ is new since the last sample — its previous
  // value is zero.  Metrics are never unregistered, so a prev_ entry with
  // no cur partner cannot happen; the walk tolerates it anyway.
  std::size_t pi = 0;
  for (const MetricSnapshot& c : cur) {
    if (c.timeline_excluded) continue;
    while (pi < prev_.size() && prev_[pi].name < c.name) ++pi;
    const MetricSnapshot* p =
        (have_prev_ && pi < prev_.size() && prev_[pi].name == c.name)
            ? &prev_[pi]
            : nullptr;
    switch (c.kind) {
      case MetricKind::kCounter: {
        const std::uint64_t before = p ? p->counter : 0;
        // A smaller current value means the registry was reset since the
        // last sample; everything currently counted happened after it.
        const std::uint64_t delta =
            c.counter >= before ? c.counter - before : c.counter;
        if (delta != 0) s.counter_deltas.emplace_back(c.name, delta);
        break;
      }
      case MetricKind::kGauge: {
        const double before = p ? p->gauge : 0.0;
        if (!same_bits(c.gauge, before)) {
          s.gauge_values.emplace_back(c.name, c.gauge);
        }
        break;
      }
      case MetricKind::kHistogram: {
        const std::uint64_t before = p ? p->hist_count : 0;
        const bool reset = c.hist_count < before;
        const std::uint64_t count_delta =
            reset ? c.hist_count : c.hist_count - before;
        if (count_delta == 0) break;
        TimelineSample::HistDelta hd;
        hd.name = c.name;
        hd.count_delta = count_delta;
        // Merge-walk the sparse bucket lists (both ascending by index).
        std::size_t bi = 0;
        for (const auto& [idx, n] : c.hist_buckets) {
          std::uint64_t bucket_before = 0;
          if (p && !reset) {
            while (bi < p->hist_buckets.size() &&
                   p->hist_buckets[bi].first < idx) {
              ++bi;
            }
            if (bi < p->hist_buckets.size() &&
                p->hist_buckets[bi].first == idx) {
              bucket_before = p->hist_buckets[bi].second;
            }
          }
          if (n > bucket_before) {
            hd.bucket_deltas.emplace_back(idx, n - bucket_before);
          }
        }
        s.hist_deltas.push_back(std::move(hd));
        break;
      }
    }
  }

  samples_.push_back(std::move(s));
  prev_ = std::move(cur);
  have_prev_ = true;
}

void Timeline::clear() {
  prev_.clear();
  have_prev_ = false;
  pending_fields_.clear();
  samples_.clear();
}

void Timeline::write_jsonl(std::ostream& out) const {
  const auto saved_precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  for (const TimelineSample& s : samples_) {
    out << "{\"seq\": " << s.seq << ", \"label\": \"";
    write_json_escaped(out, s.label);
    out << "\", \"index\": " << s.index;
    if (!s.fields.empty()) {
      out << ", \"fields\": {";
      bool first = true;
      for (const auto& [k, v] : s.fields) {
        if (!first) out << ", ";
        first = false;
        out << '"';
        write_json_escaped(out, k);
        out << "\": ";
        write_double(out, v);
      }
      out << '}';
    }
    if (!s.counter_deltas.empty()) {
      out << ", \"counters\": {";
      bool first = true;
      for (const auto& [k, v] : s.counter_deltas) {
        if (!first) out << ", ";
        first = false;
        out << '"';
        write_json_escaped(out, k);
        out << "\": " << v;
      }
      out << '}';
    }
    if (!s.gauge_values.empty()) {
      out << ", \"gauges\": {";
      bool first = true;
      for (const auto& [k, v] : s.gauge_values) {
        if (!first) out << ", ";
        first = false;
        out << '"';
        write_json_escaped(out, k);
        out << "\": ";
        write_double(out, v);
      }
      out << '}';
    }
    if (!s.hist_deltas.empty()) {
      out << ", \"histograms\": {";
      bool first = true;
      for (const auto& hd : s.hist_deltas) {
        if (!first) out << ", ";
        first = false;
        out << '"';
        write_json_escaped(out, hd.name);
        out << "\": {\"count\": " << hd.count_delta << ", \"buckets\": [";
        bool first_bucket = true;
        for (const auto& [idx, n] : hd.bucket_deltas) {
          if (!first_bucket) out << ", ";
          first_bucket = false;
          const double ub =
              Histogram::bucket_upper_bound(static_cast<std::size_t>(idx));
          out << '[';
          if (std::isinf(ub)) {
            out << "\"inf\"";
          } else {
            out << ub;
          }
          out << ", " << n << ']';
        }
        out << "]}";
      }
      out << '}';
    }
    out << "}\n";
  }
  out.precision(saved_precision);
}

}  // namespace cps::obs
