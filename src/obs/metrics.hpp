// Process-wide metrics registry: counters, gauges, histograms.
//
// The observability substrate the ROADMAP's perf PRs stand on — you cannot
// speed up a hot path you cannot measure.  Design constraints:
//
//  * Named metrics, scheme "layer.component.metric" (lower-case,
//    [a-z0-9_.]); the registry rejects anything else so dashboards and
//    sidecar JSON stay greppable.
//  * Registration is slow-path (mutex + map) and happens once per call
//    site; the hot path is a relaxed atomic add behind the runtime enable
//    flag.  The CPS_* macros in obs/obs.hpp cache the looked-up reference
//    in a function-local static, so an instrumented loop pays one branch
//    plus one atomic increment when enabled and one branch when not.
//  * Metrics are never unregistered: references handed out stay valid for
//    the process lifetime (reset() zeroes values, never frees).
//  * Histograms use fixed log-scale (power-of-two) buckets so merging and
//    percentile estimates need no per-histogram configuration.
//
// The registry compiles unconditionally — only the instrumentation macros
// vanish under CPS_OBS=OFF — so tools (bench sidecars, tests) can always
// link against it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cps::obs {

// --- Runtime enable flag -------------------------------------------------

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when instrumentation should record.  Relaxed load: a torn-epoch
/// metric around a toggle is acceptable, a fence in every hot path is not.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Reads CPS_OBS_ENABLE from the environment ("0"/empty = off, anything
/// else = on) and applies it.  Returns the resulting flag.
bool init_from_env();

// --- Metric types --------------------------------------------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over fixed log-scale buckets.
///
/// Bucket i spans (ub(i-1), ub(i)] with ub(i) = 2^(i - kUnderflowExponent);
/// bucket 0 additionally absorbs everything <= 2^-kUnderflowExponent
/// (including non-positive values) and the last bucket everything beyond
/// 2^(kBucketCount - 1 - kUnderflowExponent), so observe() never loses a
/// sample.  With 64 buckets anchored at 2^-20 the covered range is roughly
/// 1e-6 .. 8.8e12 — microsecond timers up to ~100 days, metres, counts.
class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 64;
  static constexpr int kUnderflowExponent = 20;

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }

  /// Index of the bucket observe(v) lands in.
  static std::size_t bucket_index(double v) noexcept;

  /// Inclusive upper bound of bucket i (+inf for the last bucket).
  static double bucket_upper_bound(std::size_t i) noexcept;

  /// Estimated q-quantile (q in [0, 1]) from the bucket upper bounds; 0
  /// when empty.  Upper-bound biased, as bucketed estimates are.
  double quantile(double q) const noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// --- Registry ------------------------------------------------------------

/// One metric's state as captured by Registry::snapshot() — the raw
/// material the Timeline diffs into per-interval deltas.  Histogram
/// buckets are stored sparsely (index, count) since most of the 64
/// log-scale buckets are empty.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  bool timeline_excluded = false;
  std::uint64_t counter = 0;                  ///< kCounter only.
  double gauge = 0.0;                         ///< kGauge only.
  std::uint64_t hist_count = 0;               ///< kHistogram only.
  /// Non-empty histogram buckets as (bucket index, count) pairs,
  /// ascending by index.  Deliberately no sum/min/max: bucket counts are
  /// deterministic for deterministic observations at any thread count,
  /// while the float sum depends on observation order.
  std::vector<std::pair<std::uint8_t, std::uint64_t>> hist_buckets;
};

/// Process-wide name -> metric table.  Lookup is mutex-guarded; returned
/// references are stable for the process lifetime.
class Registry {
 public:
  /// The singleton instance (tests may construct standalone registries).
  static Registry& instance();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates the named metric.  Throws std::invalid_argument when
  /// the name violates the "layer.component.metric" scheme or is already
  /// registered with a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// histogram() plus a timeline-exclusion mark: wall-clock durations are
  /// not deterministic, so duration histograms must never leak into the
  /// Timeline's bit-identical JSONL output.  ScopedTimer records through
  /// this entry point.
  Histogram& duration_histogram(std::string_view name);

  /// Marks `name` as excluded from Timeline snapshots (idempotent; the
  /// metric need not be registered yet).  For metrics that describe the
  /// host environment (pool size) or wall time rather than deterministic
  /// algorithmic work.
  void exclude_from_timeline(std::string_view name);

  /// True when `name` has been marked timeline-excluded.
  bool timeline_excluded(std::string_view name) const;

  std::size_t size() const;

  /// Zeroes every metric's value; registrations (and references) survive.
  void reset();

  /// Captures every registered metric's current value, sorted by name —
  /// the Timeline's diff source.  See MetricSnapshot for what is
  /// (deliberately) not captured.
  std::vector<MetricSnapshot> snapshot() const;

  /// Serialises all metrics as one JSON object, names sorted, shaped
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p90, p99, buckets: [[ub, n], ...]}}}.
  /// When `extra_json` is non-empty it is spliced verbatim as additional
  /// top-level members (no surrounding braces) — ObsSession uses it for
  /// the trace-truncation footer.
  void write_json(std::ostream& out, std::string_view extra_json = {}) const;

  /// True when `name` follows the naming scheme (non-empty, [a-z0-9_.],
  /// no leading/trailing/doubled dots, at least one dot).
  static bool valid_name(std::string_view name) noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

/// Singleton shorthands — what the CPS_* macros expand to.
inline Registry& registry() { return Registry::instance(); }
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

}  // namespace cps::obs
