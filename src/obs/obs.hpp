// Instrumentation macros — the only obs API hot paths should touch.
//
// Two independent switches:
//  * CPS_OBS (CMake option, default ON) defines CPS_OBS_ENABLED; with the
//    option OFF every macro below compiles to nothing, so instrumented
//    code is byte-identical to uninstrumented code.
//  * obs::set_enabled(true) (or env CPS_OBS_ENABLE=1) arms recording at
//    runtime; while disarmed each macro costs one relaxed atomic load and
//    a predictable branch.
//
// Counter/gauge/histogram macros resolve the metric name once per call
// site (function-local static reference into the registry), so steady
// state is branch + atomic op.  Names must be string literals in
// layer.component.metric form ("geometry.delaunay.incircle_calls").
//
// The registry/trace classes themselves (obs/metrics.hpp, obs/trace.hpp,
// obs/timer.hpp) compile unconditionally; gate only the hot-path macros.
#pragma once

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"

#if defined(CPS_OBS_ENABLED)

#define CPS_OBS_CONCAT_IMPL(a, b) a##b
#define CPS_OBS_CONCAT(a, b) CPS_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope into histogram `name` (µs) + a trace slice.
#define CPS_TIMER(name) \
  ::cps::obs::ScopedTimer CPS_OBS_CONCAT(cps_obs_timer_, __LINE__)(name)

/// Adds `n` to counter `name`.  `n` is evaluated only when obs is armed.
#define CPS_COUNT(name, n)                                              \
  do {                                                                  \
    if (::cps::obs::enabled()) {                                        \
      static ::cps::obs::Counter& CPS_OBS_CONCAT(cps_obs_m_,            \
                                                 __LINE__) =            \
          ::cps::obs::counter(name);                                    \
      CPS_OBS_CONCAT(cps_obs_m_, __LINE__)                              \
          .add(static_cast<std::uint64_t>(n));                          \
    }                                                                   \
  } while (0)

/// Sets gauge `name` to `v`.
#define CPS_GAUGE(name, v)                                              \
  do {                                                                  \
    if (::cps::obs::enabled()) {                                        \
      static ::cps::obs::Gauge& CPS_OBS_CONCAT(cps_obs_m_, __LINE__) =  \
          ::cps::obs::gauge(name);                                      \
      CPS_OBS_CONCAT(cps_obs_m_, __LINE__)                              \
          .set(static_cast<double>(v));                                 \
    }                                                                   \
  } while (0)

/// Observes `v` into histogram `name`.
#define CPS_HIST(name, v)                                               \
  do {                                                                  \
    if (::cps::obs::enabled()) {                                        \
      static ::cps::obs::Histogram& CPS_OBS_CONCAT(cps_obs_m_,          \
                                                   __LINE__) =          \
          ::cps::obs::histogram(name);                                  \
      CPS_OBS_CONCAT(cps_obs_m_, __LINE__)                              \
          .observe(static_cast<double>(v));                             \
    }                                                                   \
  } while (0)

/// Emits a trace counter sample (a numeric timeline track in Perfetto).
#define CPS_TRACE_COUNTER(name, v)                                      \
  do {                                                                  \
    if (::cps::obs::enabled()) {                                        \
      ::cps::obs::trace().counter(name, static_cast<double>(v));        \
    }                                                                   \
  } while (0)

/// Emits an instant trace marker.
#define CPS_TRACE_INSTANT(name)                                         \
  do {                                                                  \
    if (::cps::obs::enabled()) ::cps::obs::trace().instant(name);       \
  } while (0)

/// Attaches a context field to the next timeline sample.  `v` is
/// evaluated only while the timeline is armed, so expensive context
/// (component counts) costs nothing in figure runs.
#define CPS_TIMELINE_ANNOTATE(key, v)                                   \
  do {                                                                  \
    if (::cps::obs::timeline().armed()) {                               \
      ::cps::obs::timeline().annotate(key, static_cast<double>(v));     \
    }                                                                   \
  } while (0)

/// Marks a phase boundary: diffs the metrics registry against the
/// previous boundary and records the delta (plus pending annotations).
#define CPS_TIMELINE_SAMPLE(label, index)                               \
  do {                                                                  \
    if (::cps::obs::timeline().armed()) {                               \
      ::cps::obs::timeline().sample(label,                              \
                                    static_cast<std::int64_t>(index));  \
    }                                                                   \
  } while (0)

#else  // !CPS_OBS_ENABLED — everything vanishes.

#define CPS_TIMER(name) ((void)0)
#define CPS_COUNT(name, n) ((void)0)
#define CPS_GAUGE(name, v) ((void)0)
#define CPS_HIST(name, v) ((void)0)
#define CPS_TRACE_COUNTER(name, v) ((void)0)
#define CPS_TRACE_INSTANT(name) ((void)0)
#define CPS_TIMELINE_ANNOTATE(key, v) ((void)0)
#define CPS_TIMELINE_SAMPLE(label, index) ((void)0)

#endif  // CPS_OBS_ENABLED
