#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <set>
#include <stdexcept>

namespace cps::obs {
namespace {

// Environment override applied once at load time, so benches run under
// `CPS_OBS_ENABLE=1 ./bench_x` without touching the code.
const bool g_env_applied = [] {
  init_from_env();
  return true;
}();

}  // namespace

bool init_from_env() {
  if (const char* e = std::getenv("CPS_OBS_ENABLE")) {
    set_enabled(e[0] != '\0' && e[0] != '0');
  }
  return enabled();
}

// --- Histogram -----------------------------------------------------------

std::size_t Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0) || std::isinf(v)) {
    // Non-positive, NaN -> underflow bucket; +inf -> overflow bucket.
    return std::isinf(v) && v > 0.0 ? kBucketCount - 1 : 0;
  }
  int exp = 0;
  const double mantissa = std::frexp(v, &exp);  // v = mantissa * 2^exp.
  // v lies in (2^(exp-1), 2^exp) for mantissa in (0.5, 1); exactly 2^k has
  // mantissa 0.5 and belongs to the bucket whose upper bound it is.
  const int power = mantissa == 0.5 ? exp - 1 : exp;
  const long idx = static_cast<long>(power) + kUnderflowExponent;
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(kBucketCount) - 1));
}

double Histogram::bucket_upper_bound(std::size_t i) noexcept {
  if (i >= kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(i) - kUnderflowExponent);
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t n =
      count_.fetch_add(1, std::memory_order_relaxed) + 1;
  double s = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(s, s + v, std::memory_order_relaxed)) {
  }
  if (n == 1) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  double hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += bucket(i);
    if (static_cast<double>(seen) >= rank) {
      // Clamp the estimate into the observed range so tiny samples do not
      // report a bucket bound far beyond any real observation.
      return std::min(std::max(bucket_upper_bound(i), min()), max());
    }
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ------------------------------------------------------------

namespace {

struct MetricSlot {
  MetricKind kind;
  // unique_ptr keeps addresses stable across map rehash/rebalance.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

void write_json_escaped(std::ostream& out, std::string_view s) {
  // Metric names are validated to a JSON-safe charset; escape defensively
  // anyway so a future relaxation cannot corrupt the sidecar.
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mutex;
  // Ordered map: snapshot/JSON output is deterministic without a sort.
  std::map<std::string, MetricSlot, std::less<>> metrics;
  // Names the Timeline must not diff (wall-time histograms, environment
  // gauges).  Kept separate from the slots so a name can be excluded
  // before the metric is first registered.
  std::set<std::string, std::less<>> timeline_excluded;

  MetricSlot& slot(std::string_view name, MetricKind kind) {
    if (!valid_name(name)) {
      throw std::invalid_argument(
          "obs: metric name must be non-empty [a-z0-9_.] in "
          "layer.component.metric form: '" +
          std::string(name) + "'");
    }
    std::lock_guard lock(mutex);
    auto it = metrics.find(name);
    if (it == metrics.end()) {
      MetricSlot fresh;
      fresh.kind = kind;
      switch (kind) {
        case MetricKind::kCounter:
          fresh.counter = std::make_unique<Counter>();
          break;
        case MetricKind::kGauge:
          fresh.gauge = std::make_unique<Gauge>();
          break;
        case MetricKind::kHistogram:
          fresh.histogram = std::make_unique<Histogram>();
          break;
      }
      it = metrics.emplace(std::string(name), std::move(fresh)).first;
    } else if (it->second.kind != kind) {
      throw std::invalid_argument("obs: metric '" + std::string(name) +
                                  "' already registered with another kind");
    }
    return it->second;
  }
};

Registry::Registry() : impl_(new Impl) {}
Registry::~Registry() { delete impl_; }

Registry& Registry::instance() {
  static Registry r;
  return r;
}

bool Registry::valid_name(std::string_view name) noexcept {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool has_dot = false;
  char prev = '\0';
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
    if (c == '.') {
      if (prev == '.') return false;
      has_dot = true;
    }
    prev = c;
  }
  return has_dot;
}

Counter& Registry::counter(std::string_view name) {
  return *impl_->slot(name, MetricKind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *impl_->slot(name, MetricKind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string_view name) {
  return *impl_->slot(name, MetricKind::kHistogram).histogram;
}

Histogram& Registry::duration_histogram(std::string_view name) {
  Histogram& h = *impl_->slot(name, MetricKind::kHistogram).histogram;
  exclude_from_timeline(name);
  return h;
}

void Registry::exclude_from_timeline(std::string_view name) {
  std::lock_guard lock(impl_->mutex);
  if (impl_->timeline_excluded.find(name) == impl_->timeline_excluded.end()) {
    impl_->timeline_excluded.emplace(name);
  }
}

bool Registry::timeline_excluded(std::string_view name) const {
  std::lock_guard lock(impl_->mutex);
  return impl_->timeline_excluded.find(name) !=
         impl_->timeline_excluded.end();
}

std::size_t Registry::size() const {
  std::lock_guard lock(impl_->mutex);
  return impl_->metrics.size();
}

void Registry::reset() {
  std::lock_guard lock(impl_->mutex);
  for (auto& [name, slot] : impl_->metrics) {
    switch (slot.kind) {
      case MetricKind::kCounter: slot.counter->reset(); break;
      case MetricKind::kGauge: slot.gauge->reset(); break;
      case MetricKind::kHistogram: slot.histogram->reset(); break;
    }
  }
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<MetricSnapshot> out;
  out.reserve(impl_->metrics.size());
  for (const auto& [name, slot] : impl_->metrics) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = slot.kind;
    snap.timeline_excluded = impl_->timeline_excluded.find(name) !=
                             impl_->timeline_excluded.end();
    switch (slot.kind) {
      case MetricKind::kCounter:
        snap.counter = slot.counter->value();
        break;
      case MetricKind::kGauge:
        snap.gauge = slot.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *slot.histogram;
        snap.hist_count = h.count();
        for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
          const std::uint64_t n = h.bucket(i);
          if (n != 0) {
            snap.hist_buckets.emplace_back(static_cast<std::uint8_t>(i), n);
          }
        }
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void Registry::write_json(std::ostream& out, std::string_view extra_json) const {
  std::lock_guard lock(impl_->mutex);
  const auto section = [&](MetricKind kind, const char* label,
                           bool trailing_comma) {
    out << "  \"" << label << "\": {";
    bool first = true;
    for (const auto& [name, slot] : impl_->metrics) {
      if (slot.kind != kind) continue;
      if (!first) out << ',';
      first = false;
      out << "\n    \"";
      write_json_escaped(out, name);
      out << "\": ";
      switch (kind) {
        case MetricKind::kCounter:
          out << slot.counter->value();
          break;
        case MetricKind::kGauge:
          out << slot.gauge->value();
          break;
        case MetricKind::kHistogram: {
          const Histogram& h = *slot.histogram;
          out << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
              << ", \"min\": " << h.min() << ", \"max\": " << h.max()
              << ", \"mean\": " << h.mean()
              << ", \"p50\": " << h.quantile(0.5)
              << ", \"p90\": " << h.quantile(0.9)
              << ", \"p99\": " << h.quantile(0.99) << ", \"buckets\": [";
          bool first_bucket = true;
          for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
            const std::uint64_t n = h.bucket(i);
            if (n == 0) continue;
            if (!first_bucket) out << ", ";
            first_bucket = false;
            const double ub = Histogram::bucket_upper_bound(i);
            out << "[";
            if (std::isinf(ub)) {
              out << "\"inf\"";  // JSON has no Infinity literal.
            } else {
              out << ub;
            }
            out << ", " << n << "]";
          }
          out << "]}";
          break;
        }
      }
    }
    out << (first ? "}" : "\n  }") << (trailing_comma ? "," : "") << "\n";
  };
  out << "{\n";
  section(MetricKind::kCounter, "counters", true);
  section(MetricKind::kGauge, "gauges", true);
  section(MetricKind::kHistogram, "histograms", !extra_json.empty());
  if (!extra_json.empty()) {
    out << "  " << extra_json << "\n";
  }
  out << "}\n";
}

Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::instance().gauge(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

}  // namespace cps::obs
