#include "viz/series.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cps::viz {

std::string format_table(std::span<const Series> columns, int precision) {
  if (columns.empty()) return "";
  const std::size_t n = columns[0].values.size();
  for (const auto& c : columns) {
    if (c.values.size() != n) {
      throw std::invalid_argument("format_table: ragged columns");
    }
  }
  // Render every cell first so column widths can be computed.
  std::vector<std::vector<std::string>> cells(columns.size());
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].name.size();
    cells[c].reserve(n);
    for (const double v : columns[c].values) {
      std::ostringstream ss;
      ss << std::fixed << std::setprecision(precision) << v;
      cells[c].push_back(ss.str());
      widths[c] = std::max(widths[c], cells[c].back().size());
    }
  }
  std::ostringstream out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) out << "  ";
    out << std::setw(static_cast<int>(widths[c])) << columns[c].name;
  }
  out << '\n';
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << cells[c][r];
    }
    out << '\n';
  }
  return out.str();
}

std::string sparkline(std::span<const double> values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double span = hi > lo ? hi - lo : 1.0;
  std::string out;
  for (const double v : values) {
    const double norm = (v - lo) / span;
    const auto idx =
        std::min<std::size_t>(7, static_cast<std::size_t>(norm * 8.0));
    out += kLevels[idx];
  }
  return out;
}

std::string summarize(const std::string& name,
                      std::span<const double> values) {
  std::ostringstream out;
  out << name << ':';
  if (values.empty()) {
    out << " (empty)";
    return out.str();
  }
  double lo = values[0];
  double hi = values[0];
  double sum = 0.0;
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  out << std::setprecision(6) << " min=" << lo << " max=" << hi
      << " mean=" << sum / static_cast<double>(values.size())
      << " n=" << values.size();
  return out.str();
}

}  // namespace cps::viz
