#include "viz/series.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cps::viz {
namespace {

/// NaN placeholder for tabular output; libstdc++ would print "nan"/"-nan"
/// which breaks column scanning and downstream CSV diffing.
constexpr const char* kNanCell = "-";

}  // namespace

std::string format_table(std::span<const Series> columns, int precision) {
  if (columns.empty()) return "";
  const std::size_t n = columns[0].values.size();
  for (const auto& c : columns) {
    if (c.values.size() != n) {
      throw std::invalid_argument("format_table: ragged columns");
    }
  }
  // Render every cell first so column widths can be computed.
  std::vector<std::vector<std::string>> cells(columns.size());
  std::vector<std::size_t> widths(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].name.size();
    cells[c].reserve(n);
    for (const double v : columns[c].values) {
      if (std::isnan(v)) {
        cells[c].push_back(kNanCell);
      } else {
        std::ostringstream ss;
        ss << std::fixed << std::setprecision(precision) << v;
        cells[c].push_back(ss.str());
      }
      widths[c] = std::max(widths[c], cells[c].back().size());
    }
  }
  std::ostringstream out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) out << "  ";
    out << std::setw(static_cast<int>(widths[c])) << columns[c].name;
  }
  out << '\n';
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << "  ";
      out << std::setw(static_cast<int>(widths[c])) << cells[c][r];
    }
    out << '\n';
  }
  return out.str();
}

std::string sparkline(std::span<const double> values) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  // Scale on the finite values only; NaN (and the all-NaN series) must not
  // poison the range — casting NaN to an index is undefined behaviour.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const double v : values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const bool any_finite = lo <= hi;
  const double span = hi > lo ? hi - lo : 1.0;
  std::string out;
  for (const double v : values) {
    if (std::isnan(v) || !any_finite) {
      out += "·";  // Placeholder glyph, same cell width as the blocks.
      continue;
    }
    const double norm = (v - lo) / span;
    const auto idx = std::min<std::size_t>(
        7, static_cast<std::size_t>(std::max(norm, 0.0) * 8.0));
    out += kLevels[idx];
  }
  return out;
}

std::string summarize(const std::string& name,
                      std::span<const double> values) {
  std::ostringstream out;
  out << name << ':';
  if (values.empty()) {
    out << " (empty)";
    return out.str();
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  std::size_t finite = 0;
  for (const double v : values) {
    if (std::isnan(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
    ++finite;
  }
  if (finite == 0) {
    out << " (all-nan) n=" << values.size();
    return out.str();
  }
  out << std::setprecision(6) << " min=" << lo << " max=" << hi
      << " mean=" << sum / static_cast<double>(finite)
      << " n=" << values.size();
  if (finite < values.size()) out << " nan=" << values.size() - finite;
  return out.str();
}

}  // namespace cps::viz
