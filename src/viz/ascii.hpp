// Terminal rendering of environment surfaces and node topologies.
//
// The paper communicates results as Matlab surface plots (Figs. 1, 3, 5-9);
// the bench harnesses communicate the same content as ASCII heat-maps with
// optional node-position overlays, so a reviewer can eyeball the rebuilt
// surface directly in the bench output.
#pragma once

#include <span>
#include <string>

#include "field/field.hpp"
#include "geometry/vec2.hpp"
#include "numerics/quadrature.hpp"

namespace cps::viz {

/// Rendering options.
struct AsciiOptions {
  std::size_t width = 60;    ///< Character columns (>= 2).
  std::size_t height = 24;   ///< Character rows (>= 2).
  char node_marker = 'o';    ///< Overlay glyph for node positions.
  bool border = true;        ///< Surround with a box.
  /// Value range for the ramp; when min == max the range is taken from the
  /// rendered samples.
  double range_min = 0.0;
  double range_max = 0.0;
};

/// Renders `f` over `region` as an ASCII heat-map (dark = low, bright =
/// high, 10-level ramp).  `nodes` are overlaid with the node marker.  The
/// y axis points up (last text row is y0), matching the paper's plots.
/// Throws std::invalid_argument for degenerate sizes or region.
std::string render_field(const field::Field& f, const num::Rect& region,
                         std::span<const geo::Vec2> nodes = {},
                         const AsciiOptions& options = {});

/// Renders only a topology: nodes plus '.' where no node is.
std::string render_topology(const num::Rect& region,
                            std::span<const geo::Vec2> nodes,
                            const AsciiOptions& options = {});

}  // namespace cps::viz
