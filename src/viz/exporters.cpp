#include "viz/exporters.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace cps::viz {
namespace {

std::ofstream open_or_throw(const std::string& path,
                            std::ios_base::openmode mode = std::ios::out) {
  std::ofstream out(path, mode);
  if (!out) throw std::runtime_error("exporters: cannot open " + path);
  return out;
}

}  // namespace

void write_csv_matrix(std::ostream& out, const field::GridField& grid) {
  out << std::setprecision(17);
  for (std::size_t j = 0; j < grid.ny(); ++j) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      if (i) out << ',';
      out << grid.at(i, j);
    }
    out << '\n';
  }
}

void write_csv_matrix_file(const std::string& path,
                           const field::GridField& grid) {
  auto out = open_or_throw(path);
  write_csv_matrix(out, grid);
}

void write_positions_csv(std::ostream& out,
                         std::span<const geo::Vec2> positions) {
  out << "x,y\n" << std::setprecision(17);
  for (const auto& p : positions) out << p.x << ',' << p.y << '\n';
}

void write_positions_csv_file(const std::string& path,
                              std::span<const geo::Vec2> positions) {
  auto out = open_or_throw(path);
  write_positions_csv(out, positions);
}

void write_pgm(std::ostream& out, const field::GridField& grid) {
  const double lo = grid.min_value();
  const double hi = grid.max_value();
  const double span = hi > lo ? hi - lo : 1.0;
  out << "P5\n" << grid.nx() << ' ' << grid.ny() << "\n255\n";
  for (std::size_t j = grid.ny(); j-- > 0;) {
    for (std::size_t i = 0; i < grid.nx(); ++i) {
      const double norm = (grid.at(i, j) - lo) / span;
      const auto byte = static_cast<unsigned char>(
          std::clamp(norm * 255.0, 0.0, 255.0));
      out.put(static_cast<char>(byte));
    }
  }
}

void write_pgm_file(const std::string& path, const field::GridField& grid) {
  auto out = open_or_throw(path, std::ios::out | std::ios::binary);
  write_pgm(out, grid);
}

}  // namespace cps::viz
