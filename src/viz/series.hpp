// Tabular / sparkline printing for bench output.  Every figure bench
// prints its series through these helpers so the output stays uniform.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace cps::viz {

/// One named numeric column.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Formats columns as an aligned text table.  All series must have the same
/// length (std::invalid_argument otherwise).  `precision` applies to every
/// value.  An empty column list yields ""; NaN cells render as "-".
std::string format_table(std::span<const Series> columns, int precision = 4);

/// Unicode sparkline (8 levels) of a series; empty input yields "".  NaN
/// values render as "·" and are excluded from the scale (an all-NaN series
/// is all placeholders).
std::string sparkline(std::span<const double> values);

/// "name: min=... max=... mean=..." one-line summary.  NaN values are
/// skipped for the statistics and reported as a "nan=<count>" suffix;
/// empty input yields "(empty)", all-NaN input "(all-nan)".
std::string summarize(const std::string& name,
                      std::span<const double> values);

}  // namespace cps::viz
