#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace cps::viz {
namespace {

constexpr const char* kRamp = " .:-=+*#%@";
constexpr std::size_t kRampLevels = 10;

void validate(const num::Rect& region, const AsciiOptions& options) {
  if (options.width < 2 || options.height < 2) {
    throw std::invalid_argument("render: size too small");
  }
  if (region.width() <= 0.0 || region.height() <= 0.0) {
    throw std::invalid_argument("render: empty region");
  }
}

geo::Vec2 cell_center(const num::Rect& region, const AsciiOptions& options,
                      std::size_t col, std::size_t row_from_bottom) {
  const double fx =
      (static_cast<double>(col) + 0.5) / static_cast<double>(options.width);
  const double fy = (static_cast<double>(row_from_bottom) + 0.5) /
                    static_cast<double>(options.height);
  return {region.x0 + fx * region.width(), region.y0 + fy * region.height()};
}

std::string assemble(const std::vector<std::string>& rows_bottom_up,
                     bool border) {
  std::string out;
  const std::size_t w = rows_bottom_up.empty() ? 0 : rows_bottom_up[0].size();
  if (border) out += '+' + std::string(w, '-') + "+\n";
  for (std::size_t r = rows_bottom_up.size(); r-- > 0;) {
    if (border) out += '|';
    out += rows_bottom_up[r];
    if (border) out += '|';
    out += '\n';
  }
  if (border) out += '+' + std::string(w, '-') + "+\n";
  return out;
}

void overlay_nodes(std::vector<std::string>& rows, const num::Rect& region,
                   const AsciiOptions& options,
                   std::span<const geo::Vec2> nodes) {
  for (const auto& n : nodes) {
    if (!region.contains(n.x, n.y)) continue;
    const auto col = std::min(
        options.width - 1,
        static_cast<std::size_t>((n.x - region.x0) / region.width() *
                                 static_cast<double>(options.width)));
    const auto row = std::min(
        options.height - 1,
        static_cast<std::size_t>((n.y - region.y0) / region.height() *
                                 static_cast<double>(options.height)));
    rows[row][col] = options.node_marker;
  }
}

}  // namespace

std::string render_field(const field::Field& f, const num::Rect& region,
                         std::span<const geo::Vec2> nodes,
                         const AsciiOptions& options) {
  validate(region, options);
  std::vector<std::vector<double>> values(
      options.height, std::vector<double>(options.width));
  double lo = options.range_min;
  double hi = options.range_max;
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -lo;
  }
  // Cell centres separate per axis, so the raster is one batched
  // value_row per character row (same bits as the per-cell calls).
  std::vector<double> xs(options.width);
  for (std::size_t c = 0; c < options.width; ++c) {
    xs[c] = cell_center(region, options, c, 0).x;
  }
  for (std::size_t r = 0; r < options.height; ++r) {
    f.value_row(cell_center(region, options, 0, r).y, xs, values[r].data());
    if (options.range_min == options.range_max) {
      for (const double v : values[r]) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::string> rows(options.height,
                                std::string(options.width, ' '));
  for (std::size_t r = 0; r < options.height; ++r) {
    for (std::size_t c = 0; c < options.width; ++c) {
      const double norm = std::clamp((values[r][c] - lo) / span, 0.0, 1.0);
      const auto level = std::min(
          kRampLevels - 1,
          static_cast<std::size_t>(norm * static_cast<double>(kRampLevels)));
      rows[r][c] = kRamp[level];
    }
  }
  overlay_nodes(rows, region, options, nodes);
  return assemble(rows, options.border);
}

std::string render_topology(const num::Rect& region,
                            std::span<const geo::Vec2> nodes,
                            const AsciiOptions& options) {
  validate(region, options);
  std::vector<std::string> rows(options.height,
                                std::string(options.width, '.'));
  overlay_nodes(rows, region, options, nodes);
  return assemble(rows, options.border);
}

}  // namespace cps::viz
