// File exporters for offline plotting: CSV matrices (gnuplot / pandas) and
// binary PGM images (any image viewer).  These are the "figure data"
// counterparts of the paper's Matlab plots.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "field/grid_field.hpp"
#include "geometry/vec2.hpp"

namespace cps::viz {

/// Writes the grid as a bare CSV matrix (row j = y index j, no header).
void write_csv_matrix(std::ostream& out, const field::GridField& grid);
void write_csv_matrix_file(const std::string& path,
                           const field::GridField& grid);

/// Writes node positions as "x,y" lines with a header row.
void write_positions_csv(std::ostream& out,
                         std::span<const geo::Vec2> positions);
void write_positions_csv_file(const std::string& path,
                              std::span<const geo::Vec2> positions);

/// Writes an 8-bit binary PGM (P5) of the grid, low = black, high = white.
/// Rows are emitted top-down (image convention: y grows downward).
void write_pgm(std::ostream& out, const field::GridField& grid);
void write_pgm_file(const std::string& path, const field::GridField& grid);

}  // namespace cps::viz
